#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <mutex>
#include <thread>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"

namespace tess::obs {

namespace {

// Heartbeat slots mirror the metrics layout: slot 0 = unranked threads,
// slot r+1 = rank r (ranks >= kMaxTrackedRanks share the last slot). The
// stored value is now_ns() + 1 so 0 can mean "inactive or retired".
std::array<std::atomic<std::uint64_t>, kRankSlots> g_beats{};

int slot_rank(std::size_t slot) { return static_cast<int>(slot) - 1; }

/// Buffered fd writer built on write(2) only — usable from a signal
/// handler (no allocation, no locks, no stdio).
class RawWriter {
 public:
  explicit RawWriter(int fd) : fd_(fd) {}
  ~RawWriter() { flush(); }
  void flush() {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len_ = 0;
  }
  void put(char c) {
    if (len_ == sizeof buf_) flush();
    buf_[len_++] = c;
  }
  void str(const char* s) {
    if (s == nullptr) return;
    while (*s != '\0') put(*s++);
  }
  void u64(std::uint64_t v) {
    char tmp[24];
    int i = 24;
    do {
      tmp[--i] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (i < 24) put(tmp[i++]);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      put('-');
      u64(static_cast<std::uint64_t>(-v));
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }

 private:
  int fd_;
  char buf_[512];
  std::size_t len_ = 0;
};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

constexpr int kSignals[] = {SIGSEGV, SIGABRT};

struct State {
  std::mutex mutex;  // guards config + watchdog lifecycle (not the dump)
  FlightConfig config;
  // Precomputed at arm() time so the signal path never allocates.
  char txt_path[512] = {};
  bool armed = false;
  bool handlers_installed = false;
  std::atomic<bool> fired{false};
  std::atomic<std::uint64_t> armed_at_ns{0};

  std::thread watchdog;
  std::condition_variable watchdog_cv;
  bool watchdog_stop = false;

  struct sigaction previous[std::size(kSignals)] = {};
};

State& state() {
  static State s;
  return s;
}

}  // namespace

void heartbeat() {
  g_beats[detail::rank_slot()].store(now_ns() + 1,
                                     std::memory_order_relaxed);
}

void heartbeat_retire() {
  g_beats[detail::rank_slot()].store(0, std::memory_order_relaxed);
}

std::vector<HeartbeatAge> heartbeat_ages() {
  std::vector<HeartbeatAge> out;
  const std::uint64_t now = now_ns();
  for (std::size_t slot = 0; slot < g_beats.size(); ++slot) {
    const std::uint64_t v = g_beats[slot].load(std::memory_order_relaxed);
    if (v == 0) continue;
    const std::uint64_t beat = v - 1;
    out.push_back({slot_rank(slot), now > beat ? now - beat : 0});
  }
  return out;
}

void flight_signal_handler(int sig) {
  FlightRecorder::instance().crash_dump(sig);
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (and the core/ASan report still happens).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder() {
  // Touch the singletons the dump path reads so they are constructed
  // before this object — and therefore destroyed after it — keeping the
  // watchdog's last check safe during static destruction.
  (void)Tracer::instance().capacity();
  (void)metrics().snapshot();
  (void)state();
}

FlightRecorder::~FlightRecorder() { disarm(); }

bool FlightRecorder::armed() const {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.armed;
}

bool FlightRecorder::fired() const {
  return state().fired.load(std::memory_order_acquire);
}

std::string FlightRecorder::dump_path() const {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.config.path_prefix + ".flight.txt";
}

void FlightRecorder::arm(FlightConfig config) {
  disarm();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (config.poll_ms == 0)
    config.poll_ms = config.stall_ms / 4 > 10 ? config.stall_ms / 4 : 10;
  s.config = std::move(config);
  std::snprintf(s.txt_path, sizeof s.txt_path, "%s.flight.txt",
                s.config.path_prefix.c_str());
  s.fired.store(false, std::memory_order_release);
  s.armed_at_ns.store(now_ns(), std::memory_order_relaxed);
  for (auto& b : g_beats) b.store(0, std::memory_order_relaxed);

  if (s.config.signals) {
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = &flight_signal_handler;
    sigemptyset(&action.sa_mask);
    for (std::size_t i = 0; i < std::size(kSignals); ++i)
      ::sigaction(kSignals[i], &action, &s.previous[i]);
    s.handlers_installed = true;
  }
  s.armed = true;
  if (s.config.watchdog) {
    s.watchdog_stop = false;
    s.watchdog = std::thread([this] { watchdog_loop(); });
  }
}

void FlightRecorder::disarm() {
  auto& s = state();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.armed) return;
    s.armed = false;
    s.watchdog_stop = true;
    joinable = std::move(s.watchdog);
    if (s.handlers_installed) {
      for (std::size_t i = 0; i < std::size(kSignals); ++i)
        ::sigaction(kSignals[i], &s.previous[i], nullptr);
      s.handlers_installed = false;
    }
  }
  s.watchdog_cv.notify_all();
  if (joinable.joinable()) joinable.join();
}

void FlightRecorder::watchdog_loop() {
  auto& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  const auto poll = std::chrono::milliseconds(s.config.poll_ms);
  while (!s.watchdog_stop) {
    s.watchdog_cv.wait_for(lock, poll, [&] { return s.watchdog_stop; });
    if (s.watchdog_stop) return;
    const bool abort_after = s.config.abort_on_stall;
    lock.unlock();
    const bool fired_now = check_now();
    if (fired_now && abort_after) {
      RawWriter err(2);
      err.str("tess flight recorder: aborting after stall dump\n");
      err.flush();
      std::abort();  // runs our SIGABRT handler, which no-ops (fired latch)
    }
    lock.lock();
    if (fired_now) return;  // one dump per arm; nothing left to watch
  }
}

bool FlightRecorder::check_now() {
  auto& s = state();
  std::uint64_t stall_ns = 0;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    stall_ns = s.config.stall_ms * 1000000ull;
  }
  if (s.fired.load(std::memory_order_acquire)) return false;

  std::string stalled;
  for (const auto& hb : heartbeat_ages()) {
    if (hb.rank < 0) continue;  // unranked slot never triggers, only reports
    if (hb.age_ns <= stall_ns) continue;
    if (!stalled.empty()) stalled += ", ";
    stalled += std::to_string(hb.rank);
    stalled += " (" + std::to_string(hb.age_ns / 1000000ull) + " ms)";
  }
  if (stalled.empty()) return false;
  dump("watchdog: stalled rank(s) " + stalled + " exceeded " +
       std::to_string(stall_ns / 1000000ull) + " ms without a heartbeat");
  return true;
}

void FlightRecorder::dump(const std::string& reason) {
  write_dump(reason.c_str(), /*signal_context=*/false);
}

void FlightRecorder::crash_dump(int sig) {
  write_dump(signal_name(sig), /*signal_context=*/true);
}

namespace {

struct SpanDumpCtx {
  RawWriter* out;
  std::uint64_t now;
  int current_lane = -1;
};

void dump_span(void* ctx_ptr, int rank, int lane, const SpanRecord& rec) {
  auto* ctx = static_cast<SpanDumpCtx*>(ctx_ptr);
  RawWriter& out = *ctx->out;
  if (lane != ctx->current_lane) {
    ctx->current_lane = lane;
    out.str("  lane ");
    out.i64(lane);
    out.str(" rank ");
    out.i64(rank);
    out.str(":\n");
  }
  out.str("    ");
  out.str(rec.name);
  out.str(" depth=");
  out.u64(rec.depth);
  out.str(" dur_us=");
  out.u64((rec.t1_ns - rec.t0_ns) / 1000);
  out.str(" ended_ms_ago=");
  out.u64(ctx->now > rec.t1_ns ? (ctx->now - rec.t1_ns) / 1000000 : 0);
  out.put('\n');
}

}  // namespace

void FlightRecorder::write_dump(const char* reason, bool signal_context) {
  auto& s = state();
  // One dump per arm: the first trigger (watchdog, signal, or explicit
  // call) wins; an abort following a stall dump must not overwrite it.
  if (s.fired.exchange(true, std::memory_order_acq_rel)) return;

  // Flush a dying-gasp record onto the live telemetry stream (if armed) so
  // the timeseries ends with the crash/stall instead of just going silent.
  // emit_final is signal-safe (integers + sanitized reason, one write).
  if (auto* sw = stream()) sw->emit_final(reason);

  // The precomputed path and config are read without the lock: a signal
  // may arrive while the arming thread holds it. arm() publishes them
  // before installing handlers/watchdog, so the read is safe against
  // everything but a concurrent re-arm mid-crash — acceptable for a
  // diagnostics path.
  const std::uint64_t stall_ns = s.config.stall_ms * 1000000ull;
  const int fd = ::open(s.txt_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  {
    RawWriter out(fd);
    out.str("==== tess flight recorder dump ====\n");
    out.str("reason: ");
    out.str(reason);
    out.put('\n');
    out.str("uptime_ms: ");
    out.u64(now_ns() / 1000000);
    out.put('\n');
    out.str("armed_ms_ago: ");
    const std::uint64_t armed_at =
        s.armed_at_ns.load(std::memory_order_relaxed);
    out.u64((now_ns() - armed_at) / 1000000);
    out.put('\n');

    out.str("\nheartbeat ages (stall threshold ");
    out.u64(stall_ns / 1000000);
    out.str(" ms):\n");
    bool any = false;
    for (std::size_t slot = 0; slot < g_beats.size(); ++slot) {
      const std::uint64_t v = g_beats[slot].load(std::memory_order_relaxed);
      if (v == 0) continue;
      any = true;
      const std::uint64_t age = now_ns() - (v - 1);
      const int rank = slot_rank(slot);
      if (rank < 0) {
        out.str("  unranked: ");
      } else {
        out.str("  rank ");
        out.i64(rank);
        out.str(": ");
      }
      out.u64(age / 1000000);
      out.str(" ms");
      if (rank >= 0 && age > stall_ns) out.str("  <-- STALLED");
      out.put('\n');
    }
    if (!any) out.str("  (no active ranks)\n");

    out.str("\nlast spans per lane (oldest first, max ");
    out.i64(s.config.last_spans);
    out.str(" each):\n");
    SpanDumpCtx ctx{&out, now_ns(), -1};
    const bool complete = detail::peek_lanes(s.config.last_spans, &dump_span,
                                             &ctx, signal_context);
    if (!complete)
      out.str("  (span registry busy in signal context; lanes skipped)\n");

    if (signal_context) {
      out.str("\nmetrics: omitted (signal context)\n");
    } else {
      out.str("\nmetrics snapshot:\n");
      const auto snap = metrics().snapshot();
      for (const auto& sample : snap.samples) {
        out.str("  ");
        out.put(sample.kind);
        out.put(' ');
        out.str(sample.name.c_str());
        out.str(" = ");
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.9g", sample.value);
        out.str(buf);
        out.put('\n');
      }
    }
    out.flush();
  }
  ::close(fd);

  if (!signal_context) {
    // Full-fat companion: everything the exporters know, for tooling.
    try {
      const auto trace = Tracer::instance().drain(false);
      const auto snap = metrics().snapshot();
      write_summary_json(s.config.path_prefix + ".flight.summary.json",
                         trace, snap);
    } catch (...) {
      // Diagnostics must never take the process down on their own.
    }
  }

  RawWriter err(2);
  err.str("tess flight recorder: dump written to ");
  err.str(s.txt_path);
  err.str(" (");
  err.str(reason);
  err.str(")\n");
  err.flush();
}

bool FlightRecorder::arm_from_env(const char* default_prefix) {
  const char* flight = std::getenv("TESS_FLIGHT");
  if (flight == nullptr || *flight == '\0' ||
      std::strcmp(flight, "0") == 0)
    return false;
  FlightConfig config;
  const char* prefix = std::getenv("TESS_OBS_EXPORT");
  if (prefix != nullptr && *prefix != '\0') {
    config.path_prefix = prefix;
  } else if (default_prefix != nullptr && *default_prefix != '\0') {
    config.path_prefix = default_prefix;
  } else {
    config.path_prefix =
        "tess-flight-" + std::to_string(static_cast<long>(::getpid()));
  }
  if (const char* stall = std::getenv("TESS_FLIGHT_STALL_MS"))
    if (const long v = std::atol(stall); v > 0)
      config.stall_ms = static_cast<std::uint64_t>(v);
  if (const char* abort_env = std::getenv("TESS_FLIGHT_ABORT"))
    config.abort_on_stall = *abort_env != '\0' && *abort_env != '0';
  instance().arm(std::move(config));
  return true;
}

namespace {
// `TESS_FLIGHT=1 ctest ...` arms every binary in the run without code
// changes: evaluated once before main().
const bool g_armed_from_env = FlightRecorder::arm_from_env();
}  // namespace

}  // namespace tess::obs
