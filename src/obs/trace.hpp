// Hierarchical scoped-span tracer — the timing half of the observability
// layer (see DESIGN.md §4.7).
//
// A span is a named wall-clock interval opened by TESS_SPAN("phase") and
// closed when the enclosing scope exits. Completed spans are recorded into
// a per-thread ring buffer tagged with the thread's rank (ranks execute as
// threads, see comm/comm.hpp; pool workers inherit the rank of the rank
// thread that owns the pool), so a drained trace has one lane per
// rank×thread — exactly the per-phase/per-thread breakdown PARAVT and the
// multithreaded VORO++ extension base their scaling claims on.
//
// Cost model:
//  * compiled out (TESS_OBS_ENABLED=0): TESS_SPAN expands to nothing;
//  * runtime-disabled (the default): one relaxed atomic load per span,
//    no allocation, no clock read;
//  * enabled: two steady_clock reads and one ring-buffer store per span.
// The ring buffer overwrites its oldest entries when full (the drop count
// is reported per lane), so tracing never allocates on the hot path and
// can stay on in situ.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef TESS_OBS_ENABLED
#define TESS_OBS_ENABLED 1
#endif

namespace tess::obs {

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns();

/// Tag the calling thread with a rank for span-lane and metric-slot
/// attribution. Rank threads are tagged by comm::Runtime; pool workers
/// inherit the rank of the thread that constructed the pool. -1 = none.
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();

/// Sentinel for SpanRecord::arg: the span carries no argument.
inline constexpr std::int64_t kSpanNoArg = INT64_MIN;

/// One completed span. `name` must be a string literal (interned pointer).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint32_t depth = 0;  ///< nesting depth within the thread (0 = root)
  /// Optional integer tag (e.g. the simulation step index) — kSpanNoArg
  /// when absent. Aggregation still keys on `name`; the tag is exported
  /// per-event in the chrome trace so overlapping pipeline stages can be
  /// matched to the step they process.
  std::int64_t arg = kSpanNoArg;
};

/// Drained view of one thread's ring buffer: the lane of one rank×thread.
struct Lane {
  int rank = -1;             ///< rank tag at drain time (-1 = unranked)
  int lane = 0;              ///< process-unique thread ordinal
  std::uint64_t dropped = 0; ///< spans overwritten by ring wrap-around
  std::vector<SpanRecord> spans;  ///< chronological by span end
};

struct TraceDump {
  std::vector<Lane> lanes;
  [[nodiscard]] std::size_t total_spans() const {
    std::size_t n = 0;
    for (const auto& l : lanes) n += l.spans.size();
    return n;
  }
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.dropped;
    return n;
  }
};

namespace detail {
/// Bump the calling thread's span depth and return the start timestamp.
std::uint64_t span_enter();
/// Pop the depth and record the completed span in the thread's ring.
void span_exit(const char* name, std::uint64_t t0,
               std::int64_t arg = kSpanNoArg);
/// Flight-recorder peek: invoke `fn` on the most recent `max_spans` records
/// of every registered lane (oldest first; negative = all), without
/// draining or allocating. With `try_only` it backs off instead of blocking
/// when the registry lock is held — the crash-signal path — and returns
/// false. `fn` must be allocation-free when called from a signal handler.
bool peek_lanes(int max_spans,
                void (*fn)(void* ctx, int rank, int lane,
                           const SpanRecord& rec),
                void* ctx, bool try_only);
}  // namespace detail

/// Process-global tracer: owns the runtime on/off flag and the registry of
/// per-thread ring buffers. Buffers are created lazily on a thread's first
/// recorded span and persist (for draining) after the thread exits; a
/// drain with reset releases buffers whose threads are gone.
class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity (spans per thread) for buffers created after the call;
  /// existing buffers keep their size. Default 8192.
  void set_capacity(std::size_t spans_per_thread);
  [[nodiscard]] std::size_t capacity() const;

  /// Snapshot every lane. With `reset`, counts are zeroed and buffers of
  /// exited threads are released. Safe to call while other threads trace
  /// (their in-flight spans land in the next drain); for exact dumps call
  /// at a quiescent point, e.g. after a comm barrier (obs/reduce.hpp).
  TraceDump drain(bool reset = true);

  /// Discard all recorded spans.
  void clear() { (void)drain(true); }

 private:
  Tracer() = default;
  std::atomic<bool> enabled_{false};
};

/// RAII scope guard recording one span; prefer the TESS_SPAN macro, which
/// compiles out with the instrumentation.
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = kSpanNoArg) : arg_(arg) {
    if (Tracer::instance().enabled()) {
      name_ = name;
      t0_ = detail::span_enter();
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::span_exit(name_, t0_, arg_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::int64_t arg_ = kSpanNoArg;
};

#define TESS_OBS_CONCAT2(a, b) a##b
#define TESS_OBS_CONCAT(a, b) TESS_OBS_CONCAT2(a, b)

#if TESS_OBS_ENABLED
/// Open a span covering the rest of the enclosing scope. `name` must be a
/// string literal (or a select between literals).
#define TESS_SPAN(name) \
  ::tess::obs::Span TESS_OBS_CONCAT(tess_obs_span_, __LINE__){name}
/// Like TESS_SPAN, but tags the span with an integer argument (e.g. a step
/// index) exported per-event in the chrome trace.
#define TESS_SPAN_ARG(name, arg)                         \
  ::tess::obs::Span TESS_OBS_CONCAT(tess_obs_span_,      \
                                    __LINE__){name,      \
                                              static_cast<std::int64_t>(arg)}
#else
#define TESS_SPAN(name) static_cast<void>(0)
#define TESS_SPAN_ARG(name, arg) static_cast<void>(0)
#endif

}  // namespace tess::obs
