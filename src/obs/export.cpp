#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace tess::obs {

namespace {

using detail::JsonReader;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_per_rank(std::ostringstream& os,
                     const std::vector<std::pair<int, double>>& per_rank) {
  os << "{";
  bool first = true;
  for (const auto& [rank, v] : per_rank) {
    if (!first) os << ",";
    first = false;
    os << "\"" << rank << "\":" << fmt_double(v);
  }
  os << "}";
}

}  // namespace

std::vector<SpanAgg> aggregate_spans(const TraceDump& dump) {
  std::map<std::string_view, SpanAgg> by_name;
  for (const auto& lane : dump.lanes) {
    for (const auto& span : lane.spans) {
      const double dur =
          static_cast<double>(span.t1_ns - span.t0_ns) * 1e-9;
      auto [it, inserted] = by_name.try_emplace(span.name);
      SpanAgg& agg = it->second;
      if (inserted) {
        agg.name = span.name;
        agg.min_s = dur;
        agg.max_s = dur;
      }
      agg.count += 1;
      agg.total_s += dur;
      agg.min_s = std::min(agg.min_s, dur);
      agg.max_s = std::max(agg.max_s, dur);
    }
  }
  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

std::string chrome_trace_json(const TraceDump& dump) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // One chrome "process" per rank (pid = rank + 1; 0 holds unranked
  // threads) and one chrome "thread" per lane: a rank×thread grid.
  std::map<int, bool> pids;
  for (const auto& lane : dump.lanes) {
    const int pid = lane.rank + 1;
    if (!pids.contains(pid)) {
      pids[pid] = true;
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid
         << ",\"name\":\"process_name\",\"args\":{\"name\":\""
         << (lane.rank < 0 ? std::string("unranked")
                           : "rank " + std::to_string(lane.rank))
         << "\"}}";
    }
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << lane.lane
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread "
       << lane.lane << "\"}}";
    for (const auto& span : lane.spans) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << lane.lane
         << ",\"name\":\"" << json_escape(span.name)
         << "\",\"ts\":" << fmt_double(static_cast<double>(span.t0_ns) * 1e-3)
         << ",\"dur\":"
         << fmt_double(static_cast<double>(span.t1_ns - span.t0_ns) * 1e-3)
         << ",\"args\":{\"depth\":" << span.depth;
      if (span.arg != kSpanNoArg) os << ",\"arg\":" << span.arg;
      os << "}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string summary_json(const TraceDump& dump,
                         const MetricsSnapshot& metrics) {
  std::ostringstream os;
  os << "{\n  \"spans\": {";
  const auto aggs = aggregate_spans(dump);
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    os << (i == 0 ? "" : ",") << "\n    \"" << json_escape(a.name)
       << "\": {\"count\": " << a.count
       << ", \"total_s\": " << fmt_double(a.total_s)
       << ", \"min_s\": " << fmt_double(a.min_s)
       << ", \"max_s\": " << fmt_double(a.max_s)
       << ", \"mean_s\": " << fmt_double(a.mean_s()) << "}";
  }
  os << "\n  },\n";

  auto emit_kind = [&os, &metrics](char kind, const char* label,
                                   auto&& body) {
    os << "  \"" << label << "\": {";
    bool first = true;
    for (const auto& s : metrics.samples) {
      if (s.kind != kind) continue;
      os << (first ? "" : ",") << "\n    \"" << json_escape(s.name) << "\": ";
      body(s);
      first = false;
    }
    os << "\n  },\n";
  };
  emit_kind('c', "counters", [&os](const MetricSample& s) {
    os << "{\"total\": " << fmt_double(s.value) << ", \"per_rank\": ";
    append_per_rank(os, s.per_rank);
    os << "}";
  });
  emit_kind('g', "gauges", [&os](const MetricSample& s) {
    os << "{\"value\": " << fmt_double(s.value) << ", \"per_rank\": ";
    append_per_rank(os, s.per_rank);
    os << "}";
  });
  emit_kind('h', "histograms", [&os](const MetricSample& s) {
    os << "{\"count\": " << fmt_double(s.value)
       << ", \"sum\": " << fmt_double(s.sum)
       << ", \"p50\": " << fmt_double(histogram_quantile(s.bins, 0.50))
       << ", \"p90\": " << fmt_double(histogram_quantile(s.bins, 0.90))
       << ", \"p99\": " << fmt_double(histogram_quantile(s.bins, 0.99))
       << ", \"bins\": {";
    bool first = true;
    for (const auto& [floor, n] : s.bins) {
      os << (first ? "" : ",") << "\"" << floor << "\":" << n;
      first = false;
    }
    os << "}}";
  });

  os << "  \"lanes\": " << dump.lanes.size()
     << ",\n  \"dropped_spans\": " << dump.total_dropped() << "\n}\n";
  return os.str();
}

std::string summary_tsv(const TraceDump& dump,
                        const MetricsSnapshot& metrics) {
  std::ostringstream os;
  os << "kind\tname\tcount\ttotal\tmin\tmax\n";
  for (const auto& a : aggregate_spans(dump))
    os << "span\t" << a.name << "\t" << a.count << "\t" << fmt_double(a.total_s)
       << "\t" << fmt_double(a.min_s) << "\t" << fmt_double(a.max_s) << "\n";
  for (const auto& s : metrics.samples) {
    switch (s.kind) {
      case 'c':
        os << "counter\t" << s.name << "\t1\t" << fmt_double(s.value)
           << "\t0\t0\n";
        break;
      case 'g':
        os << "gauge\t" << s.name << "\t1\t" << fmt_double(s.value)
           << "\t0\t0\n";
        break;
      case 'h':
        os << "histogram\t" << s.name << "\t" << fmt_double(s.value) << "\t"
           << fmt_double(s.sum) << "\t"
           << fmt_double(histogram_quantile(s.bins, 0.50)) << "\t"
           << fmt_double(histogram_quantile(s.bins, 0.99)) << "\n";
        break;
      default: break;
    }
  }
  return os.str();
}

std::vector<SummaryRow> parse_summary_tsv(const std::string& text) {
  std::vector<SummaryRow> rows;
  std::istringstream is(text);
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    SummaryRow row;
    std::istringstream ls(line);
    std::string count, total, min, max;
    if (!std::getline(ls, row.kind, '\t') ||
        !std::getline(ls, row.name, '\t') || !std::getline(ls, count, '\t') ||
        !std::getline(ls, total, '\t') || !std::getline(ls, min, '\t') ||
        !std::getline(ls, max, '\t'))
      throw std::runtime_error("parse_summary_tsv: malformed row: " + line);
    row.count = std::stod(count);
    row.total = std::stod(total);
    row.min = std::stod(min);
    row.max = std::stod(max);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<SummaryRow> parse_summary_json(const std::string& text) {
  std::vector<SummaryRow> rows;
  JsonReader in(text);
  in.object([&](const std::string& section) {
    if (section != "spans" && section != "counters" && section != "gauges" &&
        section != "histograms") {
      in.skip_value();
      return;
    }
    const std::string kind = section.substr(0, section.size() - 1);
    in.object([&](const std::string& name) {
      double count = 0, total_s = 0, min_s = 0, max_s = 0;
      double total = 0, value = 0, sum = 0, p50 = 0, p99 = 0;
      double bins_lo = -1.0, bins_hi = -1.0;
      in.object([&](const std::string& field) {
        if (field == "count") count = in.number();
        else if (field == "total_s") total_s = in.number();
        else if (field == "min_s") min_s = in.number();
        else if (field == "max_s") max_s = in.number();
        else if (field == "total") total = in.number();
        else if (field == "value") value = in.number();
        else if (field == "sum") sum = in.number();
        else if (field == "p50") p50 = in.number();
        else if (field == "p99") p99 = in.number();
        else if (field == "bins")
          in.object([&](const std::string& floor_key) {
            const double floor_v = std::strtod(floor_key.c_str(), nullptr);
            if (bins_lo < 0.0 || floor_v < bins_lo) bins_lo = floor_v;
            if (floor_v > bins_hi) bins_hi = floor_v;
            in.skip_value();
          });
        else in.skip_value();
      });
      SummaryRow row;
      row.kind = kind;
      row.name = name;
      if (kind == "span") {
        row.count = count;
        row.total = total_s;
        row.min = min_s;
        row.max = max_s;
      } else if (kind == "counter") {
        row.count = 1;
        row.total = total;
      } else if (kind == "gauge") {
        row.count = 1;
        row.total = value;
      } else {  // histogram: quantiles ride the min/max columns
        row.count = count;
        row.total = sum;
        row.min = p50;
        row.max = p99;
        row.bins_lo = bins_lo;
        row.bins_hi = bins_hi;
      }
      rows.push_back(std::move(row));
    });
  });
  return rows;
}

std::vector<SummaryRow> parse_benchmark_json(const std::string& text,
                                             std::string* build_type) {
  std::vector<SummaryRow> rows;
  if (build_type != nullptr) build_type->clear();
  std::string context_build_type;  // library_build_type fallback
  JsonReader in(text);
  in.object([&](const std::string& section) {
    if (section == "context") {
      in.object([&](const std::string& key) {
        if (key == "tess_build_type") {
          if (build_type != nullptr) *build_type = in.string();
          else in.skip_value();
        } else if (key == "library_build_type") {
          context_build_type = in.string();
        } else {
          in.skip_value();
        }
      });
      return;
    }
    if (section != "benchmarks") {
      in.skip_value();
      return;
    }
    in.array([&] {
      SummaryRow row;
      row.kind = "bench";
      std::string run_type;
      double real_time = 0.0, cpu_time = 0.0, unit = 1e-9;  // default ns
      in.object([&](const std::string& field) {
        if (field == "name") row.name = in.string();
        else if (field == "run_type") run_type = in.string();
        else if (field == "iterations") row.count = in.number();
        else if (field == "real_time") real_time = in.number();
        else if (field == "cpu_time") cpu_time = in.number();
        else if (field == "time_unit") {
          const std::string u = in.string();
          unit = u == "s" ? 1.0 : u == "ms" ? 1e-3 : u == "us" ? 1e-6 : 1e-9;
        } else {
          in.skip_value();
        }
      });
      // Aggregate rows (mean/median/stddev of repetitions) would double
      // count against the per-iteration rows; keep iterations only.
      if (!run_type.empty() && run_type != "iteration") return;
      row.total = real_time * unit;  // per-iteration wall seconds
      row.min = cpu_time * unit;
      row.max = cpu_time * unit;
      rows.push_back(std::move(row));
    });
  });
  if (build_type != nullptr && build_type->empty())
    *build_type = context_build_type;
  return rows;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (n != text.size())
    throw std::runtime_error("obs: short write to '" + path + "'");
}

}  // namespace tess::obs
