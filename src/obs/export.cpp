#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tess::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_per_rank(std::ostringstream& os,
                     const std::vector<std::pair<int, double>>& per_rank) {
  os << "{";
  bool first = true;
  for (const auto& [rank, v] : per_rank) {
    if (!first) os << ",";
    first = false;
    os << "\"" << rank << "\":" << fmt_double(v);
  }
  os << "}";
}

}  // namespace

std::vector<SpanAgg> aggregate_spans(const TraceDump& dump) {
  std::map<std::string_view, SpanAgg> by_name;
  for (const auto& lane : dump.lanes) {
    for (const auto& span : lane.spans) {
      const double dur =
          static_cast<double>(span.t1_ns - span.t0_ns) * 1e-9;
      auto [it, inserted] = by_name.try_emplace(span.name);
      SpanAgg& agg = it->second;
      if (inserted) {
        agg.name = span.name;
        agg.min_s = dur;
        agg.max_s = dur;
      }
      agg.count += 1;
      agg.total_s += dur;
      agg.min_s = std::min(agg.min_s, dur);
      agg.max_s = std::max(agg.max_s, dur);
    }
  }
  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

std::string chrome_trace_json(const TraceDump& dump) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // One chrome "process" per rank (pid = rank + 1; 0 holds unranked
  // threads) and one chrome "thread" per lane: a rank×thread grid.
  std::map<int, bool> pids;
  for (const auto& lane : dump.lanes) {
    const int pid = lane.rank + 1;
    if (!pids.contains(pid)) {
      pids[pid] = true;
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid
         << ",\"name\":\"process_name\",\"args\":{\"name\":\""
         << (lane.rank < 0 ? std::string("unranked")
                           : "rank " + std::to_string(lane.rank))
         << "\"}}";
    }
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << lane.lane
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread "
       << lane.lane << "\"}}";
    for (const auto& span : lane.spans) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << lane.lane
         << ",\"name\":\"" << json_escape(span.name)
         << "\",\"ts\":" << fmt_double(static_cast<double>(span.t0_ns) * 1e-3)
         << ",\"dur\":"
         << fmt_double(static_cast<double>(span.t1_ns - span.t0_ns) * 1e-3)
         << ",\"args\":{\"depth\":" << span.depth << "}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string summary_json(const TraceDump& dump,
                         const MetricsSnapshot& metrics) {
  std::ostringstream os;
  os << "{\n  \"spans\": {";
  const auto aggs = aggregate_spans(dump);
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const auto& a = aggs[i];
    os << (i == 0 ? "" : ",") << "\n    \"" << json_escape(a.name)
       << "\": {\"count\": " << a.count
       << ", \"total_s\": " << fmt_double(a.total_s)
       << ", \"min_s\": " << fmt_double(a.min_s)
       << ", \"max_s\": " << fmt_double(a.max_s)
       << ", \"mean_s\": " << fmt_double(a.mean_s()) << "}";
  }
  os << "\n  },\n";

  auto emit_kind = [&os, &metrics](char kind, const char* label,
                                   auto&& body) {
    os << "  \"" << label << "\": {";
    bool first = true;
    for (const auto& s : metrics.samples) {
      if (s.kind != kind) continue;
      os << (first ? "" : ",") << "\n    \"" << json_escape(s.name) << "\": ";
      body(s);
      first = false;
    }
    os << "\n  },\n";
  };
  emit_kind('c', "counters", [&os](const MetricSample& s) {
    os << "{\"total\": " << fmt_double(s.value) << ", \"per_rank\": ";
    append_per_rank(os, s.per_rank);
    os << "}";
  });
  emit_kind('g', "gauges", [&os](const MetricSample& s) {
    os << "{\"value\": " << fmt_double(s.value) << ", \"per_rank\": ";
    append_per_rank(os, s.per_rank);
    os << "}";
  });
  emit_kind('h', "histograms", [&os](const MetricSample& s) {
    os << "{\"count\": " << fmt_double(s.value)
       << ", \"sum\": " << fmt_double(s.sum) << ", \"bins\": {";
    bool first = true;
    for (const auto& [floor, n] : s.bins) {
      os << (first ? "" : ",") << "\"" << floor << "\":" << n;
      first = false;
    }
    os << "}}";
  });

  os << "  \"lanes\": " << dump.lanes.size()
     << ",\n  \"dropped_spans\": " << dump.total_dropped() << "\n}\n";
  return os.str();
}

std::string summary_tsv(const TraceDump& dump,
                        const MetricsSnapshot& metrics) {
  std::ostringstream os;
  os << "kind\tname\tcount\ttotal\tmin\tmax\n";
  for (const auto& a : aggregate_spans(dump))
    os << "span\t" << a.name << "\t" << a.count << "\t" << fmt_double(a.total_s)
       << "\t" << fmt_double(a.min_s) << "\t" << fmt_double(a.max_s) << "\n";
  for (const auto& s : metrics.samples) {
    switch (s.kind) {
      case 'c':
        os << "counter\t" << s.name << "\t1\t" << fmt_double(s.value)
           << "\t0\t0\n";
        break;
      case 'g':
        os << "gauge\t" << s.name << "\t1\t" << fmt_double(s.value)
           << "\t0\t0\n";
        break;
      case 'h':
        os << "histogram\t" << s.name << "\t" << fmt_double(s.value) << "\t"
           << fmt_double(s.sum) << "\t0\t0\n";
        break;
      default: break;
    }
  }
  return os.str();
}

std::vector<SummaryRow> parse_summary_tsv(const std::string& text) {
  std::vector<SummaryRow> rows;
  std::istringstream is(text);
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    SummaryRow row;
    std::istringstream ls(line);
    std::string count, total, min, max;
    if (!std::getline(ls, row.kind, '\t') ||
        !std::getline(ls, row.name, '\t') || !std::getline(ls, count, '\t') ||
        !std::getline(ls, total, '\t') || !std::getline(ls, min, '\t') ||
        !std::getline(ls, max, '\t'))
      throw std::runtime_error("parse_summary_tsv: malformed row: " + line);
    row.count = std::stod(count);
    row.total = std::stod(total);
    row.min = std::stod(min);
    row.max = std::stod(max);
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (n != text.size())
    throw std::runtime_error("obs: short write to '" + path + "'");
}

}  // namespace tess::obs
