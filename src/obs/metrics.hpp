// Metrics registry — the counting half of the observability layer (see
// DESIGN.md §4.7): named counters, gauges, and exponential histograms that
// absorb the ad-hoc statistics fields previously scattered across
// TessStats, Exchanger, and the benches.
//
// Metrics are process-global and always on (no runtime flag): an update is
// one relaxed atomic RMW on a slot private to the calling thread's rank,
// so cross-rank cache contention only occurs between a rank and its own
// pool workers. Per-rank attribution uses the thread rank tag from
// obs/trace.hpp; values can be read whole (value()) or per rank slice
// (value(rank)), and obs/reduce.hpp merges slices to rank 0 at a barrier.
//
// The TESS_COUNT / TESS_GAUGE_SET / TESS_HIST_ADD macros cache the
// registry lookup in a function-local static, so instrumented hot paths
// pay no name hashing after the first call — and compile to nothing when
// TESS_OBS_ENABLED=0.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace tess::obs {

/// Ranks with dedicated metric slots; higher ranks share the last slot.
inline constexpr int kMaxTrackedRanks = 64;
/// Slot 0 collects updates from unranked threads (rank tag -1).
inline constexpr int kRankSlots = kMaxTrackedRanks + 1;

namespace detail {
inline std::size_t rank_slot() {
  const int r = thread_rank();
  if (r < 0) return 0;
  return static_cast<std::size_t>(r < kMaxTrackedRanks ? r + 1
                                                       : kMaxTrackedRanks);
}
inline std::size_t slot_of(int rank) {
  if (rank < 0) return 0;
  return static_cast<std::size_t>(rank < kMaxTrackedRanks ? rank + 1
                                                          : kMaxTrackedRanks);
}
}  // namespace detail

/// Monotonic per-rank-sliced counter.
class Counter {
 public:
  void add(std::uint64_t delta) {
    slots_[detail::rank_slot()].fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sum over every rank slice (plus the unranked slot).
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.load(std::memory_order_relaxed);
    return total;
  }
  /// One rank's slice (-1 = updates from unranked threads).
  [[nodiscard]] std::uint64_t value(int rank) const {
    return slots_[detail::slot_of(rank)].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kRankSlots> slots_{};
};

/// Last-written value per rank slice; value() reduces with max (the
/// convention for per-rank quantities like the ghost size actually used).
class Gauge {
 public:
  void set(double v) {
    auto& s = slots_[detail::rank_slot()];
    s.value.store(v, std::memory_order_relaxed);
    s.written.store(true, std::memory_order_release);
  }
  [[nodiscard]] double value() const {
    double best = 0.0;
    bool any = false;
    for (const auto& s : slots_) {
      if (!s.written.load(std::memory_order_acquire)) continue;
      const double v = s.value.load(std::memory_order_relaxed);
      if (!any || v > best) best = v;
      any = true;
    }
    return best;
  }
  [[nodiscard]] double value(int rank) const {
    return slots_[detail::slot_of(rank)].value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool written(int rank) const {
    return slots_[detail::slot_of(rank)].written.load(
        std::memory_order_acquire);
  }
  void reset() {
    for (auto& s : slots_) {
      s.value.store(0.0, std::memory_order_relaxed);
      s.written.store(false, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<double> value{0.0};
    std::atomic<bool> written{false};
  };
  std::array<Slot, kRankSlots> slots_;
};

/// Quantile by bucket interpolation over exported (bin_floor, count)
/// pairs, ascending by floor: find the bucket holding the q-th sample and
/// interpolate linearly inside its [floor, 2*floor) range (the zero bucket
/// returns 0 exactly — its samples are all zero). The error is bounded by
/// the power-of-two bucket width; good enough to gate p99 latencies where
/// a mean hides tail regressions. Returns 0 on an empty histogram.
[[nodiscard]] double histogram_quantile(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& bins,
    double q);

/// Lock-free exponential histogram over unsigned samples: bin k holds the
/// samples whose bit width is k (bin 0 = zero), i.e. power-of-two buckets.
/// Coarse by design — it answers "what order of magnitude are the ghost
/// messages" without any hot-path allocation or mutex. Quantiles come from
/// bucket interpolation (quantile(), histogram_quantile()).
class ExpHistogram {
 public:
  static constexpr int kBins = 65;

  void add(std::uint64_t v) {
    bins_[static_cast<std::size_t>(bin_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] static int bin_of(std::uint64_t v) {
    return static_cast<int>(std::bit_width(v));
  }
  /// Lower bound of bin k's sample range (0, then 2^(k-1)).
  [[nodiscard]] static std::uint64_t bin_floor(int k) {
    return k <= 0 ? 0 : std::uint64_t{1} << (k - 1);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const auto n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bin_count(int k) const {
    return bins_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
  }
  /// Interpolated quantile (q in [0,1]) over the current bin contents.
  [[nodiscard]] double quantile(double q) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> bins;
    for (int k = 0; k < kBins; ++k)
      if (const auto n = bin_count(k); n != 0)
        bins.emplace_back(bin_floor(k), n);
    return histogram_quantile(bins, q);
  }
  void reset() {
    for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One exported metric. `per_rank` lists the nonzero rank slices for
/// counters and the written slices for gauges (rank -1 = unranked slot);
/// histograms export count in `value`, sample sum in `sum`, and nonzero
/// bins as (bin_floor, count) pairs in `bins`.
struct MetricSample {
  std::string name;
  char kind = 'c';  ///< 'c' counter, 'g' gauge, 'h' histogram
  double value = 0.0;
  double sum = 0.0;
  std::vector<std::pair<int, double>> per_rank;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bins;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by name
  [[nodiscard]] const MetricSample* find(std::string_view name) const;
  /// Value of a sample by name (0 when absent).
  [[nodiscard]] double value(std::string_view name) const;
};

/// Name → metric registry. Lookups are mutex-protected; returned
/// references stay valid for the process lifetime (reset() zeroes values
/// but never unregisters), which is what lets call sites cache them in
/// function-local statics.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  ExpHistogram& histogram(std::string_view name);

  /// Per-tag comm traffic (message count + bytes), kept in a fixed table
  /// so Comm::send_bytes never builds a metric name. Exported as
  /// "comm.tag<N>.messages" / "comm.tag<N>.bytes". Tags outside
  /// [kMinTag, kMaxTag] clamp to the edge slots.
  void add_tagged_message(int tag, std::uint64_t bytes);
  static constexpr int kMinTag = -8;
  static constexpr int kMaxTag = 119;

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every metric (registrations and references stay valid).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

inline Registry& metrics() { return Registry::instance(); }

#if TESS_OBS_ENABLED
#define TESS_COUNT(name, delta)                                  \
  do {                                                           \
    static ::tess::obs::Counter& TESS_OBS_CONCAT(                \
        tess_obs_counter_, __LINE__) =                           \
        ::tess::obs::metrics().counter(name);                    \
    TESS_OBS_CONCAT(tess_obs_counter_, __LINE__)                 \
        .add(static_cast<std::uint64_t>(delta));                 \
  } while (false)
#define TESS_GAUGE_SET(name, v)                                             \
  do {                                                                      \
    static ::tess::obs::Gauge& TESS_OBS_CONCAT(tess_obs_gauge_, __LINE__) = \
        ::tess::obs::metrics().gauge(name);                                 \
    TESS_OBS_CONCAT(tess_obs_gauge_, __LINE__)                              \
        .set(static_cast<double>(v));                                       \
  } while (false)
#define TESS_HIST_ADD(name, v)                                   \
  do {                                                           \
    static ::tess::obs::ExpHistogram& TESS_OBS_CONCAT(           \
        tess_obs_hist_, __LINE__) =                              \
        ::tess::obs::metrics().histogram(name);                  \
    TESS_OBS_CONCAT(tess_obs_hist_, __LINE__)                    \
        .add(static_cast<std::uint64_t>(v));                     \
  } while (false)
#else
#define TESS_COUNT(name, delta) static_cast<void>(0)
#define TESS_GAUGE_SET(name, v) static_cast<void>(0)
#define TESS_HIST_ADD(name, v) static_cast<void>(0)
#endif

}  // namespace tess::obs
