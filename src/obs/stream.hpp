// Live telemetry streaming (DESIGN.md §4.13): a low-overhead streamer that
// appends one crash-consistent JSONL record per emission point — per
// pipeline step per rank, per auto-ghost pass, per query-service interval —
// so an in-situ run or a long-lived query server is observable WHILE it
// runs, not only from its exit-time exports.
//
// Crash consistency: every record is serialized into one buffer and
// appended with a single write(2) on an O_APPEND descriptor, so records
// from concurrent rank threads interleave whole, never fragmented, and a
// kill -9 can leave at most one torn record at the tail — which the reader
// detects (missing newline or malformed JSON in the final line) and drops
// without losing anything earlier. No fsync: the page cache survives
// process death, and machine-crash durability is not this layer's job.
//
// Delta encoding: counters, histogram bins, and span aggregates are
// emitted as deltas against the writer's previous snapshot for the same
// rank, so steady-state records carry only what changed; every
// `keyframe_every`-th record per rank is a full ("full":1) keyframe that
// re-absolutizes the state, bounding how much a reader that joins late (or
// skips a malformed line) has to trust accumulated deltas. Gauges and
// histogram quantiles are always absolute.
//
// Record kinds (one JSON object per line, schema version "v":1):
//   {"k":"meta", ...}   stream header: pid, interval_ms — written at open
//   {"k":"snap", ...}   metric/span snapshot for one rank (-1 = global)
//   {"k":"step", ...}   per-step reduced StepStats (analysis/insitu_stats)
//   {"k":"final",...}   dying gasp flushed by the flight recorder on a
//                       watchdog stall or crash signal (signal-safe path:
//                       integers + a sanitized reason string, one write)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace tess::obs {

struct StreamConfig {
  std::string path;               ///< JSONL output file (appended to)
  std::uint64_t interval_ms = 1000;  ///< gate for interval_elapsed()
  int keyframe_every = 32;        ///< full records every N emissions per rank
};

/// One emission request. `values` is a free-form scalar payload (dotted
/// names, e.g. "stage.write_s") for quantities the metrics registry does
/// not carry per rank, such as a pipeline stage's per-step seconds.
struct StreamSample {
  int step = -1;  ///< simulation step (-1 = not step-scoped)
  int rank = -1;  ///< whose registry slice to emit (-1 = global totals)
  std::map<std::string, double> values;
  bool with_metrics = true;  ///< counters + gauges (slice or totals)
  bool with_hists = false;   ///< histograms + p50/p90/p99 (global values)
  bool with_spans = false;   ///< span aggregates (drains tracer w/o reset)
};

class StreamWriter {
 public:
  explicit StreamWriter(StreamConfig config);
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] const StreamConfig& config() const { return config_; }

  /// Emit one "snap" record from the live registry (and tracer, when
  /// with_spans). Thread-safe; one write(2) per record.
  void emit(const StreamSample& sample);
  /// Same, but counters/gauges come from an externally reduced snapshot
  /// (obs/reduce.hpp) instead of the live registry; histograms still read
  /// the live registry (the reduction strips bins, and ranks share one
  /// process here, so the global bins ARE the reduced bins).
  void emit(const StreamSample& sample, const MetricsSnapshot& metrics);

  /// Append one caller-serialized record (must be a full JSON object
  /// including its "k" kind; no trailing newline). Used by the StepStats
  /// record kind.
  void append_record(const std::string& json_object);

  /// True (and arms the gate) when interval_ms has elapsed since the last
  /// interval emission — the rate limit for non-step-scoped emitters
  /// (auto-ghost passes, query service).
  bool interval_elapsed();

  /// Signal-safe dying gasp: one write(2) of a {"k":"final"} record built
  /// from integers and a sanitized copy of `reason` — no allocation, no
  /// locks. Safe to call from the flight recorder's crash handler.
  void emit_final(const char* reason) noexcept;

  /// Milliseconds since the process trace epoch (now_ns()/1e6).
  [[nodiscard]] static double now_ms();

 private:
  struct Impl;
  void emit_impl(const StreamSample& sample,
                 const MetricsSnapshot& metric_src,
                 const MetricsSnapshot& hist_src);
  /// Append one already-terminated line with a single write(2).
  void append_record_line(const std::string& line);
  StreamConfig config_;
  int fd_ = -1;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> last_interval_ns_{0};
  std::unique_ptr<Impl> impl_;  ///< delta state, guarded by its mutex
};

/// Process-global streamer: non-null once configured (configure_stream or
/// the TESS_OBS_STREAM / TESS_OBS_STREAM_MS environment variables,
/// evaluated before main like the flight recorder). The pointer load is
/// lock-free, so emission points can probe it on hot-ish paths and the
/// flight recorder can reach it from a signal handler.
[[nodiscard]] StreamWriter* stream() noexcept;

/// Install (or replace) the global streamer. An empty path disables it.
void configure_stream(StreamConfig config);
void shutdown_stream();

/// TESS_OBS_STREAM names the stream file; setting only TESS_OBS_STREAM_MS
/// also enables streaming, to "<TESS_OBS_EXPORT or tess>.stream.jsonl".
/// Returns whether a streamer was installed.
bool configure_stream_from_env();

// ---------------------------------------------------------------------------
// Reader side: torn-tail-tolerant decode, used by tools/tess_top and tests.
// ---------------------------------------------------------------------------

struct StreamHist {
  double count = 0.0, sum = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  ///< absolute, as emitted
  std::map<std::uint64_t, double> bins;    ///< decoded cumulative
};

/// One decoded record. For "snap" records the metric maps hold CUMULATIVE
/// values (the reader re-accumulates the writer's deltas per rank); for
/// "step"/"meta"/"final" records the numeric payload is flattened into
/// `values` with dotted names ("volume.mean", "cells", "reason" excluded).
struct StreamRecord {
  std::string kind;
  std::uint64_t seq = 0;
  double t_ms = 0.0;
  int step = -1;
  int rank = -1;
  bool full = false;
  std::map<std::string, double> values;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, StreamHist> hists;
  /// Span aggregates: name -> (count, total_s), decoded cumulative.
  std::map<std::string, std::pair<double, double>> spans;
};

/// Parse one line (without its newline) into a RAW record — snap metric
/// maps still hold deltas. Returns false on malformed input (torn tail).
bool parse_stream_record(const std::string& line, StreamRecord& out);

struct StreamFile {
  std::vector<StreamRecord> records;  ///< decoded, deltas accumulated
  std::size_t dropped = 0;  ///< torn/malformed lines dropped (tail or not)
};

/// Incremental decoder: feed it raw bytes as they appear (tailing) and it
/// yields complete decoded records, holding back a trailing partial line
/// until its newline arrives. Accumulates per-rank delta state across
/// calls; a "full" keyframe resets that rank's state.
class StreamDecoder {
 public:
  /// Decode every complete record in `bytes` (appended to any held-back
  /// partial line). Malformed complete lines bump dropped() and are
  /// skipped.
  std::vector<StreamRecord> feed(const std::string& bytes);
  /// Count of malformed complete lines seen so far.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// Bytes of an unterminated tail currently held back (a torn tail iff
  /// the stream is known to be complete).
  [[nodiscard]] std::size_t pending_bytes() const { return partial_.size(); }

 private:
  void accumulate(StreamRecord& rec);
  std::string partial_;
  std::size_t dropped_ = 0;
  struct RankState {
    std::map<std::string, double> counters;
    std::map<std::string, StreamHist> hists;
    std::map<std::string, std::pair<double, double>> spans;
    std::map<std::string, double> gauges;
  };
  std::map<int, RankState> state_;
};

/// Read and decode a whole stream file. A trailing line without a newline,
/// or any malformed line, is dropped and counted — every complete record
/// survives (the crash-consistency contract).
StreamFile read_stream_file(const std::string& path);

// ---------------------------------------------------------------------------
// Drift detection (tess_top --check): EWMA baseline + ratio threshold.
// ---------------------------------------------------------------------------

struct DriftOptions {
  double alpha = 0.3;       ///< EWMA smoothing factor
  double threshold = 1.75;  ///< sample drifts when > baseline * threshold
  int sustain = 3;          ///< consecutive drifting samples required
  int warmup = 3;           ///< samples seeding the baseline (never flag)
  double min_value = 1e-9;  ///< baseline floor (avoids 0-baseline blowups)
};

struct DriftResult {
  bool drifted = false;
  std::size_t first_index = 0;  ///< start of the sustained run
  double value = 0.0;           ///< last sample of the run
  double baseline = 0.0;        ///< EWMA the run was judged against
  [[nodiscard]] double ratio() const {
    return baseline > 0.0 ? value / baseline : 0.0;
  }
};

/// Flag a sustained upward drift: after `warmup` samples seed the EWMA,
/// a sample exceeding baseline*threshold starts (or extends) a run;
/// `sustain` consecutive such samples trip the detector. The baseline
/// does NOT absorb drifting samples — otherwise it would chase the
/// regression and un-flag it.
DriftResult detect_drift(const std::vector<double>& series,
                         const DriftOptions& options);

struct StreamCheckOptions {
  DriftOptions drift{};
};

struct StreamCheckReport {
  bool ok = true;
  std::size_t records = 0;
  std::size_t dropped = 0;
  /// rank -> snap-record count (rank >= 0 only).
  std::map<int, std::size_t> rank_records;
  /// Distinct steps across rank records that carry "stage.step_s" (the
  /// pipeline's per-step records; mid-step heartbeats don't count).
  int steps_seen = 0;
  bool quantiles_seen = false;  ///< any histogram with p99 present
  std::vector<std::string> findings;  ///< one line per sustained drift
};

/// Cross-step drift detection over a decoded stream: per-rank step
/// wall-time (t_ms deltas between a rank's step-scoped snap records),
/// per-step imbalance factor (max/mean across ranks of "stage.step_s"),
/// and global stall fraction (delta of pipeline.stall.* span seconds per
/// second of wall, from span-bearing global records). `ok` is false when
/// any series shows sustained drift.
StreamCheckReport check_stream(const StreamFile& file,
                               const StreamCheckOptions& options);

}  // namespace tess::obs
