// The parallel Voronoi tessellation pipeline — the paper's contribution.
//
// Per block (paper Figure 5):
//   1. bidirectional ghost-zone particle exchange with neighbors, including
//      periodic-boundary translation and target-point destination selection;
//   2. local Voronoi cell computation for the block's original particles
//      against originals + ghosts (ghost-sited cells are never emitted,
//      which resolves the duplicate cells the bidirectional exchange would
//      otherwise produce — each cell is kept only by the block that owns
//      its site);
//   3. incomplete cells (still touching the ghost-grown seed box, i.e. not
//      closed off by particles) are deleted;
//   4. conservative early volume culling, vertex ordering / volume / area
//      (optionally via the convex-hull pass), final threshold culling;
//   5. parallel write of the per-block unstructured meshes to one file.
//
// Timings are broken down exactly as in the paper's Table II: particle
// exchange, Voronoi computation, and output.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "core/block_mesh.hpp"
#include "core/options.hpp"
#include "geom/backend.hpp"
#include "diy/decomposition.hpp"
#include "diy/exchange.hpp"
#include "diy/particle.hpp"
#include "util/parallel_for.hpp"
#include "util/timer.hpp"

namespace tess::core {

/// One tessellation pass of the (auto-ghost) loop, for per-iteration
/// accounting: fixed-ghost runs record exactly one entry. Counters are the
/// pass's own values; the cumulative totals live in TessStats.
struct IterationStats {
  double ghost = 0.0;              ///< ghost size used by this pass
  double exchange_seconds = 0.0;
  double compute_seconds = 0.0;
  std::size_t ghost_sent = 0;      ///< particles sent (annulus only, when incremental)
  std::size_t ghost_received = 0;  ///< particles received by this pass
  std::size_t cells_built = 0;     ///< sites (re)built this pass
  std::size_t cells_incomplete = 0;   ///< among the sites built this pass
  std::size_t cells_uncertified = 0;  ///< among the sites built this pass
};

struct TessStats {
  double exchange_seconds = 0.0;
  double compute_seconds = 0.0;
  double output_seconds = 0.0;
  [[nodiscard]] double total_seconds() const {
    return exchange_seconds + compute_seconds + output_seconds;
  }

  std::size_t local_particles = 0;
  /// Cumulative across auto-ghost passes. Derived: these are always the sum
  /// of the per-pass values in `iterations` (recomputed by
  /// finalize_from_iterations(); the per-pass entries are the single source
  /// of truth).
  std::size_t ghost_received = 0;
  std::size_t ghost_sent = 0;
  std::size_t cells_kept = 0;
  std::size_t cells_incomplete = 0;
  std::size_t cells_culled_early = 0;   ///< culled by the circumsphere bound
  std::size_t cells_culled_volume = 0;  ///< culled after exact volume
  std::uint64_t output_bytes = 0;

  /// Ghost size actually used (grows beyond options.ghost in auto mode).
  double ghost_used = 0.0;
  /// Number of tessellation passes auto_ghost needed (1 when disabled).
  int auto_iterations = 1;
  /// Cells whose security radius was not covered by the ghost zone in the
  /// final pass (0 means the result is certified exact).
  std::size_t cells_uncertified = 0;
  /// Per-pass breakdown, one entry per tessellation pass (exactly one in
  /// fixed-ghost mode). The same length on every rank — the auto loop is
  /// collective.
  std::vector<IterationStats> iterations;

  /// Recompute the cumulative ghost traffic counters from `iterations`, the
  /// single source of truth. Called by Tessellator at the end of every
  /// tessellate(); exposed so tests can assert the invariant
  /// sum(per-pass) == cumulative.
  void finalize_from_iterations();
};

class Tessellator {
 public:
  /// One block per rank; `decomp` must have comm.size() blocks.
  Tessellator(comm::Comm& comm, const diy::Decomposition& decomp,
              const TessOptions& options);

  /// Compute this block's tessellation from its original particles (which
  /// must lie inside the block's bounds). Collective. The returned mesh
  /// contains only complete, threshold-surviving cells sited at original
  /// particles.
  BlockMesh tessellate(const std::vector<diy::Particle>& mine);

  /// tessellate() for pipelined in-situ use: takes ownership of the
  /// particle snapshot, so the caller's simulation buffer is free to
  /// evolve (or be destroyed) while this pass — and any incremental
  /// auto-ghost passes referencing the snapshot — runs on another thread.
  /// The snapshot is retained until the next tessellate_step(). The span
  /// is tagged with `step` so overlapped traces stay attributable.
  ///
  /// With options.adaptive this is also where the observability loop
  /// closes: particles are first migrated into the currently active
  /// decomposition (the caller keeps handing them over in the simulation's
  /// layout); if the previous step's imbalance scheduled a repartition, a
  /// mass-weighted k-d decomposition is rebuilt collectively from the
  /// current particles and the particles migrate to their new owners;
  /// after tessellation the per-rank build seconds are allgathered into
  /// the imbalance factor that decides about step N+1. All collectives run
  /// on this call's thread/plane, so the decision is deterministic across
  /// ranks even under the pipelined driver.
  BlockMesh tessellate_step(int step, std::vector<diy::Particle> particles);

  /// Parallel write of this rank's mesh to one shared file. Collective.
  /// Returns total file bytes; accumulates the output timing into stats().
  std::uint64_t write(const std::string& path, const BlockMesh& mesh);

  /// Statistics for the last tessellate()/write() calls on this rank.
  [[nodiscard]] const TessStats& stats() const { return stats_; }

  /// Element-wise max/sum of stats across ranks (for Table II-style
  /// reporting). Collective; valid on every rank.
  [[nodiscard]] TessStats reduced_stats() const;

  [[nodiscard]] const TessOptions& options() const { return options_; }

  /// The decomposition tessellation currently runs on: the constructor's
  /// until an adaptive repartition replaces it with an owned k-d tree.
  [[nodiscard]] const diy::Decomposition& active_decomposition() const {
    return *active_;
  }
  /// Adaptive repartitions performed so far (0 unless options.adaptive).
  [[nodiscard]] int repartitions() const { return repartitions_; }
  /// Imbalance factor measured after the last adaptive tessellate_step
  /// (max/mean of per-rank cell-build seconds; 1 = perfectly balanced).
  [[nodiscard]] double last_imbalance() const { return last_imbalance_; }

 private:
  BlockMesh tessellate_once(const std::vector<diy::Particle>& mine, double ghost);
  /// The auto-ghost doubling loop (incremental or restart-from-scratch per
  /// options.incremental; both produce byte-identical meshes).
  BlockMesh tessellate_auto(const std::vector<diy::Particle>& mine);
  /// Apply a scheduled repartition and/or migrate `particles` into the
  /// active decomposition (adaptive mode; collective).
  void adaptive_prepare(int step);
  /// Measure post-step imbalance and schedule a repartition (adaptive
  /// mode; collective).
  void adaptive_decide(int step);

  comm::Comm* comm_;
  const diy::Decomposition* decomp_;
  TessOptions options_;
  /// options_.backend resolved once at construction (kAuto collapsed via
  /// TESS_GEOM_BACKEND), so one tessellation never mixes backends.
  geom::TessBackend backend_ = geom::TessBackend::kScalar;
  /// Adaptive state: `active_` points at the decomposition in use (the
  /// constructor's, or `adaptive_decomp_` after a repartition); the
  /// exchanger is rebuilt against it on every swap.
  const diy::Decomposition* active_;
  std::unique_ptr<diy::Decomposition> adaptive_decomp_;
  std::unique_ptr<diy::Exchanger> exchanger_;
  bool repart_pending_ = false;
  int repartitions_ = 0;
  int last_repart_step_ = std::numeric_limits<int>::min();
  double last_imbalance_ = 1.0;
  TessStats stats_;
  /// Intra-rank worker pool for the per-cell loop (options.threads; owned
  /// by this rank, so total threads stay bounded by ranks x threads).
  std::unique_ptr<util::ThreadPool> pool_;
  /// Snapshot owned by the last tessellate_step() (empty otherwise).
  std::vector<diy::Particle> retained_;
  /// Step tag for live-stream records emitted mid-tessellation (-1 when
  /// not invoked through tessellate_step).
  int current_step_ = -1;
};

}  // namespace tess::core
