// The per-block unstructured-mesh output data model (paper §III-C2).
//
// Vertices are listed once per block and shared among cells; integer
// indices connect vertices into faces and faces into cells. Original
// particle (site) locations, per-cell volumes and areas, per-face natural
// neighbor ids, and the block extents are stored alongside — everything the
// postprocessing plugin needs for thresholding, connected components, and
// Minkowski functionals.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "diy/decomposition.hpp"
#include "diy/serialize.hpp"
#include "geom/vec3.hpp"
#include "geom/voronoi_cell.hpp"

namespace tess::core {

using geom::Vec3;

struct CellRecord {
  std::int64_t site_id = -1;  ///< global particle id of the cell's site
  Vec3 site;                  ///< particle position
  double volume = 0.0;
  double area = 0.0;
  std::uint32_t first_face = 0;  ///< index into face arrays
  std::uint32_t num_faces = 0;
};

/// One block of the tessellation. Faces are stored structure-of-arrays:
/// face f spans face_verts[face_offsets[f] .. face_offsets[f+1]) and its
/// natural neighbor (the particle whose bisector generated it) is
/// face_neighbors[f].
class BlockMesh {
 public:
  diy::Bounds bounds{};
  std::vector<Vec3> vertices;
  std::vector<CellRecord> cells;
  std::vector<std::uint32_t> face_offsets;  ///< size = num_faces + 1
  std::vector<std::uint32_t> face_verts;
  std::vector<std::int64_t> face_neighbors;

  BlockMesh() { face_offsets.push_back(0); }

  [[nodiscard]] std::size_t num_cells() const { return cells.size(); }
  [[nodiscard]] std::size_t num_faces() const { return face_neighbors.size(); }

  /// Append a compacted Voronoi cell. Vertices are welded against the
  /// block's existing vertices so shared Voronoi vertices are listed once.
  void add_cell(std::int64_t site_id, const geom::VoronoiCell& cell,
                double volume, double area);

  /// Append every cell of `other`, re-welding its vertices against this
  /// mesh. Merging worker shards in site order through this call yields
  /// exactly the mesh a serial pass would have produced, because welding
  /// keys on quantized positions and shard-local representatives coincide
  /// with the serial first-occurrence representatives.
  void append(const BlockMesh& other);

  /// Append a single cell of `src`, re-welding its vertices against this
  /// mesh (the per-cell form of append, used by canonical_merge).
  void append_cell(const BlockMesh& src, std::size_t cell);

  /// Average faces per cell / vertices per face (paper's data-model stats).
  [[nodiscard]] double avg_faces_per_cell() const;
  [[nodiscard]] double avg_verts_per_face() const;
  /// Serialized size in bytes per cell (the paper reports ~450 B/particle
  /// for full tessellations and ~100 B after culling).
  [[nodiscard]] double bytes_per_cell() const;

  void serialize(diy::Buffer& buf) const;
  static BlockMesh deserialize(diy::Buffer& buf);
  /// Zero-copy deserialization straight out of a memory-mapped block
  /// (diy::MappedBlockFile::block_view) — same wire format as above.
  static BlockMesh deserialize(diy::BufferView& buf);

  /// Read just the block bounds from serialized bytes (they lead the wire
  /// format), letting a reader route spatial queries to blocks without
  /// deserializing any of them.
  static diy::Bounds peek_bounds(diy::BufferView buf);

 private:
  [[nodiscard]] std::uint32_t weld_vertex(const Vec3& v);

  // Spatial hash for vertex welding (quantized coordinates -> vertex index).
  struct Key {
    std::int64_t x, y, z;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  std::unordered_map<Key, std::uint32_t, KeyHash> weld_map_;
};

/// Merge per-block meshes into one canonical global mesh whose bytes are
/// independent of the decomposition that produced the blocks: cells are
/// appended in ascending site-id order (sites are globally unique, each
/// kept by exactly one owner) with vertices re-welded, and the bounds are
/// the union of the block bounds (= the domain for any full tiling). Two
/// runs that keep the same cell set — e.g. a uniform grid and a k-d
/// decomposition of the same certified tessellation — serialize to
/// identical bytes. This is the currency of the repartition-invariance
/// harness.
[[nodiscard]] BlockMesh canonical_merge(const std::vector<BlockMesh>& blocks);

}  // namespace tess::core
