#include "core/standalone.hpp"

#include "diy/exchange.hpp"

namespace tess::core {

BlockMesh standalone_tessellate(comm::Comm& comm, const diy::Decomposition& decomp,
                                std::vector<diy::Particle> particles,
                                const TessOptions& options, TessStats* stats) {
  auto mine = diy::migrate_items(
      comm, decomp, std::move(particles),
      [](diy::Particle& p) -> geom::Vec3& { return p.pos; });
  Tessellator t(comm, decomp, options);
  auto mesh = t.tessellate(mine);
  if (stats) *stats = t.stats();
  return mesh;
}

std::vector<BlockMesh> gather_meshes(comm::Comm& comm, const BlockMesh& mesh) {
  diy::Buffer buf;
  mesh.serialize(buf);
  // Gather serialized sizes, then bytes, preserving rank order.
  const auto bytes = comm.gatherv(buf.data());
  const auto sizes = comm.gather<std::uint64_t>(buf.size(), 0);
  std::vector<BlockMesh> all;
  if (comm.rank() == 0) {
    std::size_t off = 0;
    for (auto s : sizes) {
      diy::Buffer b(std::vector<std::byte>(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                                           bytes.begin() + static_cast<std::ptrdiff_t>(off + s)));
      all.push_back(BlockMesh::deserialize(b));
      off += s;
    }
  }
  return all;
}

std::vector<std::byte> merged_mesh_bytes(comm::Comm& comm,
                                         const BlockMesh& mesh) {
  const auto all = gather_meshes(comm, mesh);
  if (comm.rank() != 0) return {};
  diy::Buffer buf;
  canonical_merge(all).serialize(buf);
  return buf.data();
}

}  // namespace tess::core
