#include "core/tessellator.hpp"

#include <cmath>
#include <numbers>
#include <optional>

#include "comm/fault.hpp"
#include "diy/blockio.hpp"
#include "diy/repartition.hpp"
#include "geom/cell_builder.hpp"
#include "obs/analyze.hpp"
#include "geom/convex_hull.hpp"
#include "geom/predicates.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace tess::core {

namespace {
/// Consecutive collective exchange failures tolerated (fault injector armed)
/// before tessellation gives up. Each failed pass already represents a full
/// bounded-retry receive budget on every incomplete rank, so reaching this
/// streak means the missing data is effectively unrecoverable.
constexpr int kMaxFailedExchangePasses = 8;

/// Adaptive-mode particle migration into the active decomposition; kept
/// off the ghost/migrate tags so the fault injector can target it
/// independently.
constexpr int kTagAdaptiveMigrate = 103;
}  // namespace

Tessellator::Tessellator(comm::Comm& comm, const diy::Decomposition& decomp,
                         const TessOptions& options)
    : comm_(&comm),
      decomp_(&decomp),
      options_(options),
      backend_(geom::resolve_backend(options.backend)),
      active_(&decomp),
      exchanger_(std::make_unique<diy::Exchanger>(comm, decomp)),
      pool_(std::make_unique<util::ThreadPool>(options.threads)) {}

namespace {

/// Emit the per-pass geom.backend.* metrics from the builder's counter
/// deltas — on every run, not just parity runs, so production traces always
/// carry the filter hit rate, batch occupancy, and exact-fallback rate.
void emit_backend_metrics(geom::TessBackend backend,
                          const geom::CellBuilder::BackendStats& before,
                          const geom::CellBuilder::BackendStats& after,
                          std::uint64_t cuts_delta,
                          unsigned long long exact_before) {
  const std::uint64_t seen = after.cand_seen - before.cand_seen;
  const std::uint64_t kept = after.cand_kept - before.cand_kept;
  const std::uint64_t batches = after.batches - before.batches;
  const std::uint64_t lanes = after.lanes - before.lanes;
  const unsigned long long exact = geom::exact_fallback_count() - exact_before;
  TESS_COUNT("geom.backend.cand_seen", seen);
  TESS_COUNT("geom.backend.cand_kept", kept);
  TESS_COUNT("geom.backend.batches", batches);
  TESS_COUNT("geom.exact_fallbacks", exact);
  TESS_GAUGE_SET("geom.backend.simd",
                 backend == geom::TessBackend::kSimd ? 1.0 : 0.0);
  if (seen > 0)
    TESS_GAUGE_SET("geom.backend.filter_hit_rate",
                   static_cast<double>(kept) / static_cast<double>(seen));
  if (batches > 0)
    TESS_GAUGE_SET("geom.backend.batch_occupancy",
                   static_cast<double>(lanes) /
                       (4.0 * static_cast<double>(batches)));
  if (cuts_delta > 0)
    TESS_GAUGE_SET("geom.exact_fallback_rate",
                   static_cast<double>(exact) /
                       static_cast<double>(cuts_delta));
}

}  // namespace

void TessStats::finalize_from_iterations() {
  ghost_sent = 0;
  ghost_received = 0;
  for (const auto& it : iterations) {
    ghost_sent += it.ghost_sent;
    ghost_received += it.ghost_received;
  }
}

BlockMesh Tessellator::tessellate(const std::vector<diy::Particle>& mine) {
  TESS_SPAN("tess.tessellate");
  TESS_COUNT("tess.runs", 1);
  stats_ = TessStats{};
  stats_.local_particles = mine.size();

  BlockMesh mesh;
  if (!options_.auto_ghost) {
    stats_.ghost_used = options_.ghost;
    mesh = tessellate_once(mine, options_.ghost);
    stats_.iterations.push_back({options_.ghost, stats_.exchange_seconds,
                                 stats_.compute_seconds, stats_.ghost_sent,
                                 stats_.ghost_received, mine.size(),
                                 stats_.cells_incomplete,
                                 stats_.cells_uncertified});
  } else {
    mesh = tessellate_auto(mine);
  }
  stats_.finalize_from_iterations();
  TESS_COUNT("tess.cells_kept", stats_.cells_kept);
  TESS_COUNT("tess.cells_incomplete", stats_.cells_incomplete);
  TESS_COUNT("tess.cells_culled_early", stats_.cells_culled_early);
  TESS_COUNT("tess.cells_culled_volume", stats_.cells_culled_volume);
  TESS_COUNT("tess.cells_uncertified", stats_.cells_uncertified);
  TESS_GAUGE_SET("tess.ghost_used", stats_.ghost_used);
  return mesh;
}

BlockMesh Tessellator::tessellate_step(int step,
                                       std::vector<diy::Particle> particles) {
  TESS_SPAN_ARG("tess.step", step);
  // Own the snapshot for the whole pass: incremental auto-ghost retries
  // re-read `mine` after the exchange, so it must stay alive and stable
  // even though the caller (the pipeline's simulation thread) has moved on.
  retained_ = std::move(particles);
  current_step_ = step;
  if (options_.adaptive) adaptive_prepare(step);
  BlockMesh mesh = tessellate(retained_);
  if (options_.adaptive) adaptive_decide(step);
  current_step_ = -1;
  return mesh;
}

void Tessellator::adaptive_prepare(int step) {
  if (repart_pending_) {
    // Step N-1's imbalance scheduled this rebuild: a fresh mass-weighted
    // k-d tree over the current global particle distribution, identical on
    // every rank (built collectively), then a fresh exchanger against it.
    TESS_SPAN("tess.repartition.build");
    repart_pending_ = false;
    adaptive_decomp_ = diy::collective_kd(*comm_, *decomp_, retained_);
    active_ = adaptive_decomp_.get();
    exchanger_ = std::make_unique<diy::Exchanger>(*comm_, *active_);
    ++repartitions_;
    last_repart_step_ = step;
    TESS_COUNT("tess.repartition.count", 1);
  }
  if (active_ != decomp_) {
    // The caller still hands particles over in the simulation's layout;
    // route them to their adaptive owners before tessellating.
    TESS_SPAN("tess.repartition.migrate");
    retained_ = diy::migrate_items(
        *comm_, *active_, std::move(retained_),
        [](diy::Particle& p) -> geom::Vec3& { return p.pos; },
        kTagAdaptiveMigrate);
    TESS_GAUGE_SET("tess.repartition.local_particles",
                   static_cast<double>(retained_.size()));
  }
}

void Tessellator::adaptive_decide(int step) {
  TESS_SPAN("tess.repartition.decide");
  // Every rank sees every rank's cell-build seconds, so the hysteresis
  // decision below is a pure function of shared data — collective and
  // divergence-free even under the pipelined driver.
  const auto seconds = comm_->allgather(stats_.compute_seconds);
  last_imbalance_ = obs::imbalance_factor(seconds);
  TESS_GAUGE_SET("tess.repartition.imbalance", last_imbalance_);
  const bool cooled = static_cast<long long>(step) >=
                      static_cast<long long>(last_repart_step_) +
                          options_.repart_cooldown;
  repart_pending_ = cooled && last_imbalance_ >= options_.repart_trigger;
  if (repart_pending_) TESS_COUNT("tess.repartition.scheduled", 1);
}

BlockMesh Tessellator::tessellate_auto(const std::vector<diy::Particle>& mine) {
  // Automatic ghost-size determination (paper §V future work): repeat with
  // a doubled ghost zone until every cell is both complete and certified by
  // its security radius — at that point no particle outside the ghost zone
  // could have altered any cell, so the result equals the serial one.
  //
  // With options.incremental, the loop reuses everything a pass has proved:
  // pass k exchanges only the ghost annulus (g_{k-1}, g_k], appends it to
  // the existing CellBuilder grid, and rebuilds only the sites not yet
  // complete AND certified. A cell certified at ghost g is exact — no
  // particle beyond g can cut it — so its geometry at any larger ghost is
  // the same cell, and VoronoiCell::canonicalize() makes the stored bytes
  // independent of which pass built it. With incremental = false every pass
  // re-exchanges and rebuilds everything; the two modes emit byte-identical
  // meshes (asserted by tests), differing only in work done.
  util::ThreadCpuTimer timer;
  const geom::Vec3 dsize = active_->domain_size();
  const double ghost_cap =
      options_.auto_ghost_max_fraction * std::min({dsize.x, dsize.y, dsize.z});
  double ghost = std::min(std::max(options_.ghost, 1e-12), ghost_cap);
  const bool reuse = options_.incremental;
  const auto bounds = exchanger_->my_bounds();
  const std::size_t n = mine.size();

  double early_diam2 = 0.0;
  if (options_.min_volume > 0.0 && options_.early_cull) {
    const double r = std::cbrt(options_.min_volume * 3.0 / (4.0 * std::numbers::pi));
    early_diam2 = 4.0 * r * r;
  }

  // Per-site state carried across passes. A site is terminal once its cell
  // is complete AND certified; until then it stays on the pending list.
  // Classification (kept/culled) is recorded every pass so a cap-stopped
  // run still reports the last pass's best answer for uncertified cells.
  enum : std::uint8_t { kPending = 0, kKept = 1, kCulledEarly = 2, kCulledVolume = 3 };
  std::vector<std::uint8_t> state(n, kPending);
  std::vector<std::uint8_t> complete_flags(n, 0);
  std::vector<std::uint8_t> certified(n, 0);
  std::vector<std::optional<geom::VoronoiCell>> cell_of(n);
  std::vector<double> vol_of(n, 0.0), area_of(n, 0.0);
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;

  std::optional<geom::CellBuilder> builder;
  const int nthreads = pool_->size();
  const geom::VoronoiCell proto({0, 0, 0}, {-1, -1, -1}, {1, 1, 1});
  std::vector<geom::VoronoiCell> cells(static_cast<std::size_t>(nthreads), proto);
  std::vector<geom::ClipScratch> scratches(static_cast<std::size_t>(nthreads));
  constexpr std::size_t kGrain = 64;

  // Graceful-degradation state (fault injector armed only). A pass whose
  // exchange stays incomplete after the bounded retries is abandoned by
  // *every* rank — the verdict is collective, so the symmetric message
  // pattern and the ghost trajectory stay identical across ranks — and the
  // same pass is re-attempted: ghost/prev_ghost do not advance, the sites
  // it would have resolved remain pending (re-requested), and a rank that
  // did receive everything carries its ghosts to the retry instead of
  // re-exchanging (nothing may be sent twice).
  int failed_streak = 0;
  std::optional<std::vector<diy::Particle>> carried;
  bool builder_fresh_done = false;

  double prev_ghost = 0.0;
  for (int iteration = 1;; ++iteration) {
    TESS_SPAN(iteration == 1 ? "tess.pass" : "tess.retry_pass");
    TESS_COUNT("tess.passes", 1);
    if (iteration > 1) TESS_COUNT("tess.retries", 1);
    const auto seed = bounds.grown(ghost);

    // 1. Ghost exchange: full ball on the first pass (and every pass when
    // not reusing), the (prev_ghost, ghost] annulus afterwards. The annuli
    // partition the ball exactly — distances are computed by the same
    // expressions every call — so the union of all arrivals equals a single
    // from-scratch exchange at the current ghost.
    timer.reset();
    timer.start();
    // Stable across retries of a failed pass: the builder's fresh append
    // must happen exactly once, however many attempts the pass takes.
    const bool fresh = !reuse || !builder_fresh_done;
    std::vector<diy::Particle> ghosts;
    bool have = true;
    if (carried) {
      ghosts = std::move(*carried);
      carried.reset();
    } else {
      TESS_SPAN(fresh ? "tess.exchange" : "tess.exchange_delta");
      ghosts = fresh
                   ? exchanger_->exchange_ghost(mine, ghost)
                   : exchanger_->exchange_ghost_delta(mine, prev_ghost, ghost);
      have = exchanger_->last_exchange_complete();
    }
    timer.stop();

    if (comm::faults().armed()) {
      // Collective verdict on the pass: if any rank is missing a neighbor's
      // message, all ranks abandon the pass together and retry it — cells
      // are never built from a partial ghost set.
      const std::size_t missing =
          comm_->allreduce_sum(static_cast<std::size_t>(have ? 0 : 1));
      if (missing > 0) {
        TESS_COUNT("tess.exchange_failed_passes", 1);
        TESS_COUNT("tess.cells_rerequested", pending.size());
        if (have) carried = std::move(ghosts);
        if (++failed_streak >= kMaxFailedExchangePasses)
          throw comm::CommTimeoutError(
              "tessellate_auto: ghost exchange failed on " +
              std::to_string(missing) + " rank(s) for " +
              std::to_string(failed_streak) + " consecutive passes");
        continue;
      }
      failed_streak = 0;
    }
    if (fresh) builder_fresh_done = true;
    IterationStats iter;
    iter.ghost = ghost;
    iter.exchange_seconds = timer.seconds();
    iter.ghost_sent = exchanger_->last_sent();
    iter.ghost_received = ghosts.size();

    // 2. Builder: construct fresh or append the annulus to the existing
    // grid. Either way the final-pass builder indexes the same particle
    // multiset over the same grown box, and the canonical candidate order
    // makes its cut sequences independent of how the arrays were assembled.
    timer.reset();
    timer.start();
    std::vector<geom::Vec3> pts;
    std::vector<std::int64_t> ids;
    pts.reserve(mine.size() + ghosts.size());
    ids.reserve(mine.size() + ghosts.size());
    if (fresh) {
      for (const auto& p : mine) {
        pts.push_back(p.pos);
        ids.push_back(p.id);
      }
    }
    for (const auto& g : ghosts) {
      pts.push_back(g.pos);
      ids.push_back(g.id);
    }
    if (fresh) {
      builder.emplace(std::move(pts), std::move(ids), seed.min, seed.max,
                      backend_);
      pending.resize(n);
      for (std::size_t i = 0; i < n; ++i) pending[i] = i;
    } else {
      builder->add_points(pts, ids, seed.min, seed.max);
    }

    // 3. Rebuild the pending sites (all sites when not reusing), sharded
    // over the pool in fixed chunks of the pending list. Every write goes
    // to a per-chunk counter or a slot owned by exactly one pending site,
    // so the result is deterministic for any thread count.
    const std::size_t np = pending.size();
    const std::size_t num_chunks = (np + kGrain - 1) / kGrain;
    struct ChunkStat {
      std::size_t incomplete = 0;
      std::size_t uncertified = 0;
      std::size_t culled_early = 0;
      std::size_t culled_volume = 0;
      double cpu_seconds = 0.0;
    };
    std::vector<ChunkStat> chunk_stats(num_chunks);
    const std::uint64_t cuts_before = builder->cuts_attempted();
    const auto backend_stats_before = builder->backend_stats();
    const auto exact_before = geom::exact_fallback_count();
    timer.stop();

    TESS_SPAN("tess.build_cells");
    util::parallel_for(
        *pool_, np, kGrain,
        [&](std::size_t begin, std::size_t end, int chunk, int worker) {
          TESS_SPAN("tess.cell_chunk");
          util::ThreadCpuTimer chunk_timer;
          chunk_timer.start();
          ChunkStat& cs = chunk_stats[static_cast<std::size_t>(chunk)];
          auto& cell = cells[static_cast<std::size_t>(worker)];
          auto& scratch = scratches[static_cast<std::size_t>(worker)];
          for (std::size_t pi = begin; pi < end; ++pi) {
            const std::size_t i = pending[pi];
            builder->build_into(cell, scratch, static_cast<int>(i), seed.min,
                                seed.max);
            if (!cell.complete()) {
              ++cs.incomplete;
              complete_flags[i] = 0;
              certified[i] = 0;
              state[i] = kPending;
              cell_of[i].reset();
              continue;
            }
            complete_flags[i] = 1;
            // Canonical form before any decision: every classification below
            // then depends only on the cell's true geometry, never on the
            // pass that built it — the retained-cell bytes and the
            // would-be-rebuilt bytes coincide.
            cell.canonicalize();
            certified[i] = 4.0 * cell.max_radius2() <= ghost * ghost ? 1 : 0;
            if (!certified[i]) ++cs.uncertified;
            if (early_diam2 > 0.0 &&
                cell.max_vertex_separation2() < early_diam2) {
              ++cs.culled_early;
              state[i] = kCulledEarly;
              cell_of[i].reset();
              continue;
            }
            double volume = cell.volume();
            double area = cell.area();
            if (options_.hull_pass) {
              const auto hull = geom::convex_hull(cell.vertices(), backend_);
              if (!hull.degenerate) {
                volume = hull.volume;
                area = hull.area;
              }
            }
            if ((options_.min_volume > 0.0 && volume < options_.min_volume) ||
                (options_.max_volume > 0.0 && volume > options_.max_volume)) {
              ++cs.culled_volume;
              state[i] = kCulledVolume;
              cell_of[i].reset();
              continue;
            }
            state[i] = kKept;
            cell_of[i] = cell;
            vol_of[i] = volume;
            area_of[i] = area;
          }
          chunk_timer.stop();
          cs.cpu_seconds = chunk_timer.seconds();
        });

    timer.start();
    std::size_t pass_incomplete = 0, pass_uncertified = 0;
    double loop_cpu = 0.0;
    for (const auto& cs : chunk_stats) {
      pass_incomplete += cs.incomplete;
      pass_uncertified += cs.uncertified;
      loop_cpu += cs.cpu_seconds;
    }
    timer.stop();
    iter.compute_seconds =
        timer.seconds() + loop_cpu / static_cast<double>(nthreads);
    iter.cells_built = np;
    iter.cells_incomplete = pass_incomplete;
    iter.cells_uncertified = pass_uncertified;
    TESS_COUNT("tess.ghost_sent", iter.ghost_sent);
    TESS_COUNT("tess.ghost_received", iter.ghost_received);
    TESS_COUNT("tess.cells_built", np);
    TESS_COUNT("geom.cuts", builder->cuts_attempted() - cuts_before);
    emit_backend_metrics(backend_, backend_stats_before,
                         builder->backend_stats(),
                         builder->cuts_attempted() - cuts_before, exact_before);

    stats_.exchange_seconds += iter.exchange_seconds;
    stats_.compute_seconds += iter.compute_seconds;
    // Cumulative ghost traffic is NOT accumulated here: the per-pass entries
    // are the single source of truth, folded once by finalize_from_iterations().
    stats_.iterations.push_back(iter);
    stats_.auto_iterations = iteration;
    stats_.ghost_used = ghost;

    // Live-stream heartbeat per ghost pass, interval-gated: a long
    // auto-ghost escalation is visible (growing ghost, shrinking pending
    // set) instead of silent until the step record lands.
    if (auto* stream = obs::stream();
        stream != nullptr && stream->interval_elapsed()) {
      obs::StreamSample sample;
      sample.step = current_step_;
      sample.rank = comm_->rank();
      sample.values = {
          {"tess.pass.iteration", static_cast<double>(iteration)},
          {"tess.pass.ghost", ghost},
          {"tess.pass.pending", static_cast<double>(pending.size())},
      };
      stream->emit(sample);
    }

    // Incomplete cells only count against certification when the domain is
    // periodic (in open domains, hull cells are unbounded and are dropped
    // exactly as in fixed-ghost mode). Sites already retired contribute
    // nothing — a certified cell stays complete and certified at any larger
    // ghost — so this count matches what a full rebuild would report.
    std::size_t unresolved = pass_uncertified;
    if (active_->periodic()) unresolved += pass_incomplete;
    const auto total = comm_->allreduce_sum(unresolved);
    if (total == 0 || ghost >= ghost_cap) break;

    std::vector<std::size_t> next_pending;
    next_pending.reserve(pending.size());
    for (const std::size_t i : pending)
      if (!(complete_flags[i] && certified[i])) next_pending.push_back(i);
    pending = std::move(next_pending);
    prev_ghost = ghost;
    ghost = std::min(2.0 * ghost, ghost_cap);
  }

  // Final assembly in site order from the per-site results — the order and
  // the welded-vertex numbering are therefore mode- and thread-independent.
  TESS_SPAN("tess.assemble");
  timer.reset();
  timer.start();
  BlockMesh mesh;
  mesh.bounds = bounds;
  for (std::size_t i = 0; i < n; ++i) {
    switch (state[i]) {
      case kKept:
        mesh.add_cell(mine[i].id, *cell_of[i], vol_of[i], area_of[i]);
        ++stats_.cells_kept;
        break;
      case kCulledEarly:
        ++stats_.cells_culled_early;
        break;
      case kCulledVolume:
        ++stats_.cells_culled_volume;
        break;
      default:
        ++stats_.cells_incomplete;
        break;
    }
    if (complete_flags[i] && !certified[i]) ++stats_.cells_uncertified;
  }
  timer.stop();
  stats_.compute_seconds += timer.seconds();
  return mesh;
}

BlockMesh Tessellator::tessellate_once(const std::vector<diy::Particle>& mine,
                                       double ghost) {
  // Thread CPU time: models this rank's own work even when thread-ranks
  // oversubscribe the host cores (see util/timer.hpp).
  util::ThreadCpuTimer timer;
  TESS_SPAN("tess.pass");
  TESS_COUNT("tess.passes", 1);

  // 1. Ghost-zone neighbor exchange. Under an armed fault injector the
  // exchange may come back incomplete; all ranks then agree (collectively)
  // to resume the receive side until every rank has its full ghost set or
  // the failure budget runs out — cells are never built from partial data.
  timer.start();
  std::vector<diy::Particle> ghosts;
  {
    TESS_SPAN("tess.exchange");
    ghosts = exchanger_->exchange_ghost(mine, ghost);
  }
  if (comm::faults().armed()) {
    int streak = 0;
    while (true) {
      const bool have = exchanger_->last_exchange_complete();
      const std::size_t missing =
          comm_->allreduce_sum(static_cast<std::size_t>(have ? 0 : 1));
      if (missing == 0) break;
      TESS_COUNT("tess.exchange_failed_passes", 1);
      if (++streak >= kMaxFailedExchangePasses)
        throw comm::CommTimeoutError(
            "tessellate_once: ghost exchange failed on " +
            std::to_string(missing) + " rank(s) for " + std::to_string(streak) +
            " consecutive attempts");
      if (!have) {
        TESS_SPAN("tess.exchange");
        ghosts = exchanger_->exchange_ghost(mine, ghost);
      }
    }
  }
  timer.stop();
  stats_.exchange_seconds = timer.seconds();
  stats_.ghost_received = ghosts.size();
  stats_.ghost_sent = exchanger_->last_sent();
  TESS_COUNT("tess.ghost_sent", stats_.ghost_sent);
  TESS_COUNT("tess.ghost_received", stats_.ghost_received);

  // 2-4. Local Voronoi computation and culling.
  timer.reset();
  timer.start();
  const auto bounds = exchanger_->my_bounds();
  const auto seed = bounds.grown(ghost);

  std::vector<geom::Vec3> pts;
  std::vector<std::int64_t> ids;
  pts.reserve(mine.size() + ghosts.size());
  ids.reserve(mine.size() + ghosts.size());
  for (const auto& p : mine) {
    pts.push_back(p.pos);
    ids.push_back(p.id);
  }
  for (const auto& g : ghosts) {
    pts.push_back(g.pos);
    ids.push_back(g.id);
  }
  geom::CellBuilder builder(std::move(pts), std::move(ids), seed.min, seed.max,
                            backend_);
  const auto backend_stats_before = builder.backend_stats();
  const auto exact_before = geom::exact_fallback_count();

  // Early-cull bound: a cell whose largest vertex separation is below the
  // diameter of the sphere of volume `min_volume` cannot reach the
  // threshold volume.
  double early_diam2 = 0.0;
  if (options_.min_volume > 0.0 && options_.early_cull) {
    const double r = std::cbrt(options_.min_volume * 3.0 / (4.0 * std::numbers::pi));
    early_diam2 = 4.0 * r * r;
  }

  BlockMesh mesh;
  mesh.bounds = bounds;

  // Per-cell loop, sharded over the intra-rank pool. Sites are split into
  // chunks of a fixed grain that does NOT depend on the thread count, each
  // chunk fills its own mesh shard and stat counters, and shards are merged
  // in site order below — so the output mesh is byte-identical for any
  // options.threads. Chunks are handed out dynamically (clustered inputs
  // make per-cell cost very uneven); each worker owns one reusable
  // cell/scratch pair, which keeps the clipping kernel allocation-free in
  // steady state.
  constexpr std::size_t kGrain = 64;
  const std::size_t n = mine.size();
  const std::size_t num_chunks = (n + kGrain - 1) / kGrain;
  const int nthreads = pool_->size();

  struct Shard {
    BlockMesh mesh;
    std::size_t incomplete = 0;
    std::size_t uncertified = 0;
    std::size_t culled_early = 0;
    std::size_t culled_volume = 0;
    double cpu_seconds = 0.0;
  };
  std::vector<Shard> shards(num_chunks);
  const geom::VoronoiCell proto({0, 0, 0}, {-1, -1, -1}, {1, 1, 1});
  std::vector<geom::VoronoiCell> cells(static_cast<std::size_t>(nthreads), proto);
  std::vector<geom::ClipScratch> scratches(static_cast<std::size_t>(nthreads));

  // Pause the serial timer over the parallel loop: the calling thread works
  // chunks too, and that CPU is already accounted in the shard timers.
  timer.stop();
  TESS_COUNT("tess.cells_built", n);
  {
    TESS_SPAN("tess.build_cells");
    util::parallel_for(
        *pool_, n, kGrain,
        [&](std::size_t begin, std::size_t end, int chunk, int worker) {
          TESS_SPAN("tess.cell_chunk");
          util::ThreadCpuTimer chunk_timer;
          chunk_timer.start();
          Shard& shard = shards[static_cast<std::size_t>(chunk)];
          auto& cell = cells[static_cast<std::size_t>(worker)];
          auto& scratch = scratches[static_cast<std::size_t>(worker)];
          for (std::size_t i = begin; i < end; ++i) {
            builder.build_into(cell, scratch, static_cast<int>(i), seed.min,
                               seed.max);
            if (!cell.complete()) {
              ++shard.incomplete;
              continue;
            }
            // Security-radius certificate: every potential cutter of this cell
            // lies within 2*Rmax of the site; if that ball fits inside the
            // ghost-grown region, the cell is provably exact.
            if (4.0 * cell.max_radius2() > ghost * ghost) ++shard.uncertified;
            if (early_diam2 > 0.0 && cell.max_vertex_separation2() < early_diam2) {
              ++shard.culled_early;
              continue;
            }
            cell.compact();

            double volume = cell.volume();
            double area = cell.area();
            if (options_.hull_pass) {
              // Paper-faithful step: order the cell's vertices into faces via
              // the convex hull and take volume/area from it.
              const auto hull = geom::convex_hull(cell.vertices(), backend_);
              if (!hull.degenerate) {
                volume = hull.volume;
                area = hull.area;
              }
            }
            if (options_.min_volume > 0.0 && volume < options_.min_volume) {
              ++shard.culled_volume;
              continue;
            }
            if (options_.max_volume > 0.0 && volume > options_.max_volume) {
              ++shard.culled_volume;
              continue;
            }
            shard.mesh.add_cell(mine[i].id, cell, volume, area);
          }
          chunk_timer.stop();
          shard.cpu_seconds = chunk_timer.seconds();
        });
  }

  TESS_SPAN("tess.assemble");
  timer.start();
  // Ordered merge: shard c holds sites [c*kGrain, (c+1)*kGrain), so
  // appending in chunk order reproduces the serial site order exactly.
  double loop_cpu = 0.0;
  for (const auto& shard : shards) {
    mesh.append(shard.mesh);
    stats_.cells_incomplete += shard.incomplete;
    stats_.cells_uncertified += shard.uncertified;
    stats_.cells_culled_early += shard.culled_early;
    stats_.cells_culled_volume += shard.culled_volume;
    stats_.cells_kept += shard.mesh.cells.size();
    loop_cpu += shard.cpu_seconds;
  }
  timer.stop();
  // Model the per-rank critical path: serial sections (builder setup and
  // shard merge) on this thread, plus the cell loop's total CPU divided by
  // the pool width (== the loop CPU itself when threads == 1).
  stats_.compute_seconds =
      timer.seconds() + loop_cpu / static_cast<double>(nthreads);
  TESS_COUNT("geom.cuts", builder.cuts_attempted());
  emit_backend_metrics(backend_, backend_stats_before, builder.backend_stats(),
                       builder.cuts_attempted(), exact_before);
  return mesh;
}

std::uint64_t Tessellator::write(const std::string& path, const BlockMesh& mesh) {
  TESS_SPAN("tess.write");
  util::ThreadCpuTimer timer;
  timer.start();
  diy::Buffer buf;
  mesh.serialize(buf);
  const auto total = diy::write_blocks(*comm_, path, buf);
  timer.stop();
  stats_.output_seconds += timer.seconds();
  stats_.output_bytes = total;
  return total;
}

TessStats Tessellator::reduced_stats() const {
  TessStats r = stats_;
  // Times: max across ranks (critical path); counters: sums.
  r.exchange_seconds = comm_->allreduce_max(stats_.exchange_seconds);
  r.compute_seconds = comm_->allreduce_max(stats_.compute_seconds);
  r.output_seconds = comm_->allreduce_max(stats_.output_seconds);
  r.local_particles = comm_->allreduce_sum(stats_.local_particles);
  r.ghost_received = comm_->allreduce_sum(stats_.ghost_received);
  r.ghost_sent = comm_->allreduce_sum(stats_.ghost_sent);
  r.cells_kept = comm_->allreduce_sum(stats_.cells_kept);
  r.cells_incomplete = comm_->allreduce_sum(stats_.cells_incomplete);
  r.cells_culled_early = comm_->allreduce_sum(stats_.cells_culled_early);
  r.cells_culled_volume = comm_->allreduce_sum(stats_.cells_culled_volume);
  r.output_bytes = stats_.output_bytes;  // already global (file size)
  r.ghost_used = comm_->allreduce_max(stats_.ghost_used);
  r.auto_iterations = comm_->allreduce_max(stats_.auto_iterations);
  r.cells_uncertified = comm_->allreduce_sum(stats_.cells_uncertified);
  // Per-pass entries reduce element-wise; the loop is collective, so every
  // rank holds the same number of iterations.
  for (std::size_t k = 0; k < r.iterations.size(); ++k) {
    auto& it = r.iterations[k];
    const auto& mine = stats_.iterations[k];
    it.ghost = comm_->allreduce_max(mine.ghost);
    it.exchange_seconds = comm_->allreduce_max(mine.exchange_seconds);
    it.compute_seconds = comm_->allreduce_max(mine.compute_seconds);
    it.ghost_sent = comm_->allreduce_sum(mine.ghost_sent);
    it.ghost_received = comm_->allreduce_sum(mine.ghost_received);
    it.cells_built = comm_->allreduce_sum(mine.cells_built);
    it.cells_incomplete = comm_->allreduce_sum(mine.cells_incomplete);
    it.cells_uncertified = comm_->allreduce_sum(mine.cells_uncertified);
  }
  return r;
}

}  // namespace tess::core
