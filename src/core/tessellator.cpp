#include "core/tessellator.hpp"

#include <cmath>
#include <numbers>

#include "diy/blockio.hpp"
#include "geom/cell_builder.hpp"
#include "geom/convex_hull.hpp"

namespace tess::core {

Tessellator::Tessellator(comm::Comm& comm, const diy::Decomposition& decomp,
                         const TessOptions& options)
    : comm_(&comm), decomp_(&decomp), options_(options), exchanger_(comm, decomp) {}

BlockMesh Tessellator::tessellate(const std::vector<diy::Particle>& mine) {
  stats_ = TessStats{};
  stats_.local_particles = mine.size();

  if (!options_.auto_ghost) {
    stats_.ghost_used = options_.ghost;
    return tessellate_once(mine, options_.ghost);
  }

  // Automatic ghost-size determination (paper §V future work): repeat with
  // a doubled ghost zone until every cell is both complete and certified by
  // its security radius — at that point no particle outside the ghost zone
  // could have altered any cell, so the result equals the serial one.
  const geom::Vec3 dsize = decomp_->domain_size();
  const double ghost_cap =
      options_.auto_ghost_max_fraction * std::min({dsize.x, dsize.y, dsize.z});
  double ghost = std::min(std::max(options_.ghost, 1e-12), ghost_cap);
  BlockMesh mesh;
  for (int iteration = 1;; ++iteration) {
    const auto saved = stats_;
    stats_ = TessStats{};
    stats_.local_particles = mine.size();
    mesh = tessellate_once(mine, ghost);
    stats_.exchange_seconds += saved.exchange_seconds;
    stats_.compute_seconds += saved.compute_seconds;
    stats_.auto_iterations = iteration;
    stats_.ghost_used = ghost;

    // Incomplete cells only count against certification when the domain is
    // periodic (in open domains, hull cells are unbounded and are dropped
    // exactly as in fixed-ghost mode).
    std::size_t unresolved = stats_.cells_uncertified;
    if (decomp_->periodic()) unresolved += stats_.cells_incomplete;
    const auto total = comm_->allreduce_sum(unresolved);
    if (total == 0 || ghost >= ghost_cap) break;
    ghost = std::min(2.0 * ghost, ghost_cap);
  }
  return mesh;
}

BlockMesh Tessellator::tessellate_once(const std::vector<diy::Particle>& mine,
                                       double ghost) {
  // Thread CPU time: models this rank's own work even when thread-ranks
  // oversubscribe the host cores (see util/timer.hpp).
  util::ThreadCpuTimer timer;

  // 1. Ghost-zone neighbor exchange.
  timer.start();
  const auto ghosts = exchanger_.exchange_ghost(mine, ghost);
  timer.stop();
  stats_.exchange_seconds = timer.seconds();
  stats_.ghost_received = ghosts.size();
  stats_.ghost_sent = exchanger_.last_sent();

  // 2-4. Local Voronoi computation and culling.
  timer.reset();
  timer.start();
  const auto bounds = exchanger_.my_bounds();
  const auto seed = bounds.grown(ghost);

  std::vector<geom::Vec3> pts;
  std::vector<std::int64_t> ids;
  pts.reserve(mine.size() + ghosts.size());
  ids.reserve(mine.size() + ghosts.size());
  for (const auto& p : mine) {
    pts.push_back(p.pos);
    ids.push_back(p.id);
  }
  for (const auto& g : ghosts) {
    pts.push_back(g.pos);
    ids.push_back(g.id);
  }
  geom::CellBuilder builder(std::move(pts), std::move(ids), seed.min, seed.max);

  // Early-cull bound: a cell whose largest vertex separation is below the
  // diameter of the sphere of volume `min_volume` cannot reach the
  // threshold volume.
  double early_diam2 = 0.0;
  if (options_.min_volume > 0.0 && options_.early_cull) {
    const double r = std::cbrt(options_.min_volume * 3.0 / (4.0 * std::numbers::pi));
    early_diam2 = 4.0 * r * r;
  }

  BlockMesh mesh;
  mesh.bounds = bounds;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    auto cell = builder.build(static_cast<int>(i), seed.min, seed.max);
    if (!cell.complete()) {
      ++stats_.cells_incomplete;
      continue;
    }
    // Security-radius certificate: every potential cutter of this cell lies
    // within 2*Rmax of the site; if that ball fits inside the ghost-grown
    // region, the cell is provably exact.
    if (4.0 * cell.max_radius2() > ghost * ghost) ++stats_.cells_uncertified;
    if (early_diam2 > 0.0 && cell.max_vertex_separation2() < early_diam2) {
      ++stats_.cells_culled_early;
      continue;
    }
    cell.compact();

    double volume = cell.volume();
    double area = cell.area();
    if (options_.hull_pass) {
      // Paper-faithful step: order the cell's vertices into faces via the
      // convex hull and take volume/area from it.
      const auto hull = geom::convex_hull(cell.vertices());
      if (!hull.degenerate) {
        volume = hull.volume;
        area = hull.area;
      }
    }
    if (options_.min_volume > 0.0 && volume < options_.min_volume) {
      ++stats_.cells_culled_volume;
      continue;
    }
    if (options_.max_volume > 0.0 && volume > options_.max_volume) {
      ++stats_.cells_culled_volume;
      continue;
    }
    mesh.add_cell(mine[i].id, cell, volume, area);
    ++stats_.cells_kept;
  }
  timer.stop();
  stats_.compute_seconds = timer.seconds();
  return mesh;
}

std::uint64_t Tessellator::write(const std::string& path, const BlockMesh& mesh) {
  util::ThreadCpuTimer timer;
  timer.start();
  diy::Buffer buf;
  mesh.serialize(buf);
  const auto total = diy::write_blocks(*comm_, path, buf);
  timer.stop();
  stats_.output_seconds += timer.seconds();
  stats_.output_bytes = total;
  return total;
}

TessStats Tessellator::reduced_stats() const {
  TessStats r = stats_;
  // Times: max across ranks (critical path); counters: sums.
  r.exchange_seconds = comm_->allreduce_max(stats_.exchange_seconds);
  r.compute_seconds = comm_->allreduce_max(stats_.compute_seconds);
  r.output_seconds = comm_->allreduce_max(stats_.output_seconds);
  r.local_particles = comm_->allreduce_sum(stats_.local_particles);
  r.ghost_received = comm_->allreduce_sum(stats_.ghost_received);
  r.ghost_sent = comm_->allreduce_sum(stats_.ghost_sent);
  r.cells_kept = comm_->allreduce_sum(stats_.cells_kept);
  r.cells_incomplete = comm_->allreduce_sum(stats_.cells_incomplete);
  r.cells_culled_early = comm_->allreduce_sum(stats_.cells_culled_early);
  r.cells_culled_volume = comm_->allreduce_sum(stats_.cells_culled_volume);
  r.output_bytes = stats_.output_bytes;  // already global (file size)
  r.ghost_used = comm_->allreduce_max(stats_.ghost_used);
  r.auto_iterations = comm_->allreduce_max(stats_.auto_iterations);
  r.cells_uncertified = comm_->allreduce_sum(stats_.cells_uncertified);
  return r;
}

}  // namespace tess::core
