#include "core/annotated_checkpoint.hpp"

#include <unordered_map>

#include "diy/blockio.hpp"

namespace tess::core {

std::vector<AnnotatedParticle> annotate_particles(
    const std::vector<diy::Particle>& particles, const BlockMesh& mesh) {
  std::unordered_map<std::int64_t, double> volume_of;
  volume_of.reserve(mesh.cells.size());
  for (const auto& c : mesh.cells) volume_of.emplace(c.site_id, c.volume);

  std::vector<AnnotatedParticle> out;
  out.reserve(particles.size());
  for (const auto& p : particles) {
    AnnotatedParticle a;
    a.pos = p.pos;
    a.id = p.id;
    const auto it = volume_of.find(p.id);
    a.cell_volume = it != volume_of.end() ? it->second : 0.0;
    out.push_back(a);
  }
  return out;
}

std::uint64_t write_annotated_checkpoint(
    comm::Comm& comm, const std::string& path,
    const std::vector<AnnotatedParticle>& particles) {
  diy::Buffer buf;
  buf.write_vector(particles);
  return diy::write_blocks(comm, path, buf);
}

std::vector<AnnotatedParticle> read_annotated_checkpoint(const std::string& path,
                                                         int block) {
  diy::BlockFileReader reader(path);
  auto buf = reader.read_block(block);
  return buf.read_vector<AnnotatedParticle>();
}

}  // namespace tess::core
