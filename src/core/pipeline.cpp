#include "core/pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "diy/blockio.hpp"
#include "obs/metrics.hpp"
#include "obs/reduce.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tess::core {

InSituPipeline::InSituPipeline(comm::Comm& comm,
                               const diy::Decomposition& decomp,
                               PipelineOptions options)
    : comm_(&comm),
      options_(std::move(options)),
      tess_comm_(comm.plane(1000)),
      write_comm_(comm.plane(2000)),
      tess_(tess_comm_, decomp, options_.tess),
      tess_in_(static_cast<std::size_t>(
                   options_.queue_depth > 0 ? options_.queue_depth : 1),
               "pipeline.stall.submit", "pipeline.stall.tess.input",
               "pipeline.queue.tess.depth"),
      write_in_(static_cast<std::size_t>(
                    options_.queue_depth > 0 ? options_.queue_depth : 1),
                "pipeline.stall.tess.output", "pipeline.stall.write.input",
                "pipeline.queue.write.depth") {
  const int rank = comm.rank();
  tess_thread_ = std::thread([this, rank] {
    obs::set_thread_rank(rank);
    tess_loop();
  });
  write_thread_ = std::thread([this, rank] {
    obs::set_thread_rank(rank);
    write_loop();
  });
}

InSituPipeline::~InSituPipeline() {
  if (!finished_) {
    // Abnormal teardown (caller unwinding without finish()): retire this
    // rank BEFORE joining, so stage threads blocked mid-collective on a
    // peer — or peers blocked on us — unwind via RankRetiredError instead
    // of deadlocking the join across ranks.
    fail(std::make_exception_ptr(
        std::runtime_error("pipeline: destroyed before finish()")));
  }
  if (tess_thread_.joinable()) tess_thread_.join();
  if (write_thread_.joinable()) write_thread_.join();
}

void InSituPipeline::submit(int step, std::vector<diy::Particle> particles) {
  if (finished_)
    throw std::logic_error("pipeline: submit() after finish()");
  rethrow_if_failed();
  const int n = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n > max_in_flight_) max_in_flight_ = n;
  if (!tess_in_.push(TessItem{step, std::move(particles)})) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    rethrow_if_failed();
    throw std::logic_error("pipeline: submit() after shutdown");
  }
}

std::vector<PipelineStepResult> InSituPipeline::finish() {
  if (!finished_) {
    finished_ = true;
    // Close the head queue only: the tess stage drains what was submitted,
    // then its exit closes nothing further — we close the write queue once
    // the tess thread is done so every meshed step still gets written.
    tess_in_.close();
    if (tess_thread_.joinable()) tess_thread_.join();
    write_in_.close();
    if (write_thread_.joinable()) write_thread_.join();
  }
  rethrow_if_failed();
  return std::move(results_);
}

void InSituPipeline::tess_loop() {
  try {
    while (!failed_.load(std::memory_order_relaxed)) {
      auto item = tess_in_.pop();
      if (!item) break;
      TESS_SPAN_ARG("pipeline.stage.tess", item->step);
      WriteItem out;
      out.step = item->step;
      BlockMesh mesh =
          tess_.tessellate_step(item->step, std::move(item->particles));
      out.stats = tess_.stats();
      mesh.serialize(out.block);
      out.volumes.reserve(mesh.cells.size());
      for (const auto& c : mesh.cells) out.volumes.push_back(c.volume);
      if (options_.keep_meshes) out.mesh = std::move(mesh);
      if (!write_in_.push(std::move(out))) break;
    }
  } catch (...) {
    fail(std::current_exception());
  }
}

void InSituPipeline::write_loop() {
  try {
    while (!failed_.load(std::memory_order_relaxed)) {
      auto item = write_in_.pop();
      if (!item) break;
      TESS_SPAN_ARG("pipeline.stage.write", item->step);
      PipelineStepResult res;
      res.step = item->step;
      res.stats = std::move(item->stats);
      res.cell_volumes = std::move(item->volumes);
      res.mesh = std::move(item->mesh);
      util::ThreadCpuTimer timer;
      timer.start();
      if (!options_.output_pattern.empty()) {
        res.path = diy::step_path(options_.output_pattern, item->step);
        res.file_bytes = diy::write_blocks(write_comm_, res.path, item->block);
      }
      if (options_.on_step) options_.on_step(write_comm_, res);
      timer.stop();
      res.write_seconds = timer.seconds();
      const TessStats step_stats = res.stats;
      const double write_seconds = res.write_seconds;
      results_.push_back(std::move(res));
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      TESS_COUNT("pipeline.steps", 1);
      if (auto* stream = obs::stream()) {
        // One per-rank record per step: this rank's stage times for the
        // step, its counter/gauge slices as deltas. Then the collective
        // rank-0 reduction record with histograms + quantiles — safe here
        // because the write plane runs collectives in submission order on
        // every rank, and streaming on/off is process-global.
        obs::StreamSample sample;
        sample.step = item->step;
        sample.rank = comm_->rank();
        sample.values = {
            {"stage.exchange_s", step_stats.exchange_seconds},
            {"stage.compute_s", step_stats.compute_seconds},
            {"stage.write_s", write_seconds},
            {"stage.step_s", step_stats.total_seconds() + write_seconds},
        };
        stream->emit(sample);
        obs::stream_reduced_step(write_comm_, item->step);
      }
    }
  } catch (...) {
    fail(std::current_exception());
  }
}

void InSituPipeline::fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = error;
  }
  failed_.store(true, std::memory_order_relaxed);
  // Wake every peer blocked on this rank — in the simulation plane, the
  // tess plane, the write plane, or the central barrier — so the whole
  // group unwinds instead of waiting on collectives we will never join.
  comm_->retire_self();
  tess_in_.close();
  write_in_.close();
}

void InSituPipeline::rethrow_if_failed() {
  if (!failed_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (error_) std::rethrow_exception(error_);
}

}  // namespace tess::core
