// Standalone-mode entry points (the paper's tess supports both in situ and
// standalone operation): tessellate an arbitrary particle set without a
// simulation attached, and gather per-block meshes for in-process analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/comm.hpp"
#include "core/tessellator.hpp"

namespace tess::core {

/// Scatter a global particle set (supplied on rank 0; other ranks pass an
/// empty vector) to its owning blocks and tessellate. Collective. Returns
/// this rank's block mesh; per-rank stats are written to `stats` if given.
BlockMesh standalone_tessellate(comm::Comm& comm, const diy::Decomposition& decomp,
                                std::vector<diy::Particle> particles,
                                const TessOptions& options,
                                TessStats* stats = nullptr);

/// Gather every rank's mesh to rank 0 (block order preserved); other ranks
/// receive an empty vector. Collective.
std::vector<BlockMesh> gather_meshes(comm::Comm& comm, const BlockMesh& mesh);

/// Collective: gather all blocks to rank 0, canonical_merge them, and
/// return the merged mesh's serialized bytes (empty on other ranks). The
/// bytes depend only on the kept cell set, not on which decomposition
/// produced it — the comparison currency of the repartition-invariance
/// harness.
std::vector<std::byte> merged_mesh_bytes(comm::Comm& comm,
                                         const BlockMesh& mesh);

}  // namespace tess::core
