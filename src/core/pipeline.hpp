// Asynchronous in-situ pipeline: overlap simulation, tessellation, and
// write-behind I/O (DESIGN.md §4.10).
//
// The paper's in-situ loop is serial per step: advance the simulation,
// tessellate, write. This subsystem turns it into a three-stage pipeline
// per rank:
//
//   caller thread   : simulation step N+1, then submit(N+1, snapshot)
//   tess thread     : Voronoi tessellation of step N
//   write thread    : blocked-file write + analysis hook for step N-1
//
// Stages hand off through bounded queues (util/bounded_queue.hpp), so at
// most queue_depth snapshots wait per edge and a slow stage backpressures
// its producer instead of growing memory. Because every rank runs the same
// three stages and the queues preserve submission order, each stage plane
// executes its collectives in the same order on every rank — the
// correctness condition for running collectives concurrently. Cross-plane
// isolation comes from tag-shifted communicators (comm::Comm::plane): the
// tess stage runs on tag plane +1000, the write stage on +2000, so their
// messages and barriers can never match the simulation's.
//
// Determinism: the tessellation and the blocked-file writer are already
// byte-deterministic (ordered shard merge, exscan offsets), and the
// pipeline adds no reordering, so per-step output files are byte-identical
// to the serial tessellate+write path.
//
// Failure: if any stage throws (including injected faults — CommTimeout,
// FaultKill — surfacing as comm errors), the pipeline records the first
// error, retires its rank in the shared comm context so peers blocked on
// it in ANY plane throw RankRetiredError instead of hanging, closes both
// queues, and rethrows from the next submit()/finish() on this rank. The
// destructor follows the same retire-before-join path when the caller
// unwinds without finish(), so a group-wide abort converges instead of
// deadlocking across planes.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "core/block_mesh.hpp"
#include "core/options.hpp"
#include "core/tessellator.hpp"
#include "diy/decomposition.hpp"
#include "diy/particle.hpp"
#include "diy/serialize.hpp"
#include "util/bounded_queue.hpp"

namespace tess::core {

/// What the pipeline produced for one submitted step, on this rank.
struct PipelineStepResult {
  int step = 0;
  TessStats stats;                  ///< this rank's tessellation stats
  std::string path;                 ///< output file ("" if writing disabled)
  std::uint64_t file_bytes = 0;     ///< total blocked-file size
  /// Write-stage thread-CPU seconds for this step (file write + hook) —
  /// the critical-path model used by the benches (util/timer.hpp).
  double write_seconds = 0.0;
  std::vector<double> cell_volumes; ///< per-cell Voronoi volumes (this rank)
  std::optional<BlockMesh> mesh;    ///< retained when keep_meshes is set
};

struct PipelineOptions {
  TessOptions tess;

  /// Per-step blocked-file path pattern ("%d" -> step, see
  /// diy::step_path). Empty disables the file write (tessellation and the
  /// hook still run).
  std::string output_pattern;

  /// Max snapshots waiting per queue edge (>=1). Total in-flight snapshots
  /// per rank is bounded by 2*queue_depth + 3: queue_depth per edge, one
  /// per stage in execution, and one blocked in submit() when the head
  /// queue is full.
  int queue_depth = 1;

  /// Keep each step's BlockMesh in its PipelineStepResult. Off by default:
  /// meshes are big, and in situ the point is NOT to keep them.
  bool keep_meshes = false;

  /// Runs on the write thread after each step's file write, with the
  /// write-plane communicator — the hook may do collectives (e.g.
  /// analysis::reduce_step_stats); every rank's pipeline invokes it for
  /// the same steps in the same order. Exceptions thrown here abort the
  /// pipeline like any stage failure.
  using StepHook =
      std::function<void(comm::Comm&, const PipelineStepResult&)>;
  StepHook on_step;
};

/// Collective: construct one pipeline per rank, with the SAME options and
/// the simulation's decomposition. submit() and finish() are collective in
/// the pipelined sense — every rank must submit the same sequence of steps
/// and finish together.
class InSituPipeline {
 public:
  InSituPipeline(comm::Comm& comm, const diy::Decomposition& decomp,
                 PipelineOptions options);
  ~InSituPipeline();

  InSituPipeline(const InSituPipeline&) = delete;
  InSituPipeline& operator=(const InSituPipeline&) = delete;

  /// Hand a particle snapshot to the pipeline. Returns as soon as the
  /// snapshot is queued; blocks (span "pipeline.stall.submit") when
  /// queue_depth snapshots already wait for the tessellation stage.
  /// Rethrows the first stage error, from any prior step, on this rank.
  void submit(int step, std::vector<diy::Particle> particles);

  /// Drain both stages, join the stage threads, and return the per-step
  /// results in submission order. Rethrows the first stage error.
  std::vector<PipelineStepResult> finish();

  /// High-water mark of snapshots simultaneously in flight on this rank
  /// (submitted but not yet fully written). Stable after finish().
  [[nodiscard]] int max_in_flight() const { return max_in_flight_; }

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  struct TessItem {
    int step = 0;
    std::vector<diy::Particle> particles;
  };
  struct WriteItem {
    int step = 0;
    TessStats stats;
    diy::Buffer block;
    std::vector<double> volumes;
    std::optional<BlockMesh> mesh;
  };

  void tess_loop();
  void write_loop();
  /// Record the first error, retire this rank (waking peers blocked on it
  /// in every plane), and close both queues.
  void fail(std::exception_ptr error);
  void rethrow_if_failed();

  comm::Comm* comm_;
  PipelineOptions options_;
  comm::Comm tess_comm_;   ///< tag plane +1000
  comm::Comm write_comm_;  ///< tag plane +2000
  Tessellator tess_;

  util::BoundedQueue<TessItem> tess_in_;
  util::BoundedQueue<WriteItem> write_in_;

  std::thread tess_thread_;
  std::thread write_thread_;

  std::atomic<bool> failed_{false};
  std::exception_ptr error_;  ///< guarded by error_mutex_
  std::mutex error_mutex_;

  bool finished_ = false;       ///< caller thread only
  std::atomic<int> in_flight_{0};
  int max_in_flight_ = 0;       ///< written by the caller thread only

  /// Written by the write thread, read by the caller after the joins in
  /// finish() — the join is the synchronization point.
  std::vector<PipelineStepResult> results_;
};

}  // namespace tess::core
