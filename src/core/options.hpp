// Tessellation options, mirroring the knobs described in the paper:
// ghost-zone thickness (user-provided, §IV-A), the minimum-volume threshold
// with conservative early culling (§III-C), and the per-cell convex-hull
// pass that orders vertices into faces and computes volume/area (§III-C).
#pragma once

#include "geom/backend.hpp"

namespace tess::core {

struct TessOptions {
  /// Ghost-zone thickness in domain units. The paper finds ~4x the typical
  /// particle spacing gives 100% parallel accuracy; too small a value
  /// produces wrong cells at block boundaries (Table I).
  double ghost = 4.0;

  /// Cells whose volume falls below this are culled (<= 0 disables). The
  /// paper typically culls the smallest 10% of the volume range.
  double min_volume = 0.0;

  /// Cells whose volume exceeds this are culled (<= 0 disables; the paper's
  /// plugin supports a [min, max] threshold range).
  double max_volume = 0.0;

  /// Conservative pre-hull culling: drop a cell early when the largest
  /// vertex separation is smaller than the diameter of the sphere whose
  /// volume is `min_volume`, which proves the cell is below threshold.
  bool early_cull = true;

  /// Re-derive each kept cell's volume and area from the convex hull of its
  /// Voronoi vertices (the paper's Qhull step). The clipped polyhedron
  /// already carries ordered faces, so this is a verification/compat pass;
  /// the ablation bench quantifies its cost.
  bool hull_pass = false;

  /// Automatic ghost-size determination (the paper's §V future work).
  /// When enabled, `ghost` is only the starting guess: the tessellation is
  /// repeated with a doubled ghost zone until every cell is complete AND
  /// certified by the security radius (2 * max vertex distance <= ghost),
  /// at which point the result is provably identical to the serial one.
  bool auto_ghost = false;

  /// Upper bound for auto_ghost doubling, as a fraction of the shortest
  /// domain side (safety stop; 0.5 covers any cell in a periodic domain).
  double auto_ghost_max_fraction = 0.5;

  /// Incremental auto_ghost (only meaningful with auto_ghost = true). When
  /// true, each doubling pass exchanges only the new ghost annulus, appends
  /// it to the existing cell builder, and rebuilds only the cells that were
  /// not yet complete and certified; cells certified in an earlier pass are
  /// reused as-is. When false, every pass re-exchanges and rebuilds
  /// everything (restart-from-scratch). Both settings produce byte-identical
  /// serialized meshes — the canonicalized cell geometry is independent of
  /// the construction path — so this is purely a performance switch.
  bool incremental = true;

  /// Intra-rank worker threads for the per-cell Voronoi loop (the paper's
  /// dominant cost). 1 = serial (default), 0 = hardware concurrency, n > 1
  /// = a pool of n threads per rank. Total process parallelism is bounded
  /// by ranks x threads. The mesh produced is byte-identical for any value:
  /// cells are computed in fixed chunks and merged in site order.
  int threads = 1;

  /// Adaptive, load-balanced decomposition (only meaningful through
  /// tessellate_step). After each step the per-rank cell-build seconds are
  /// allgathered and reduced to a max/mean imbalance factor; when it
  /// reaches `repart_trigger`, the next step first rebuilds a
  /// mass-weighted k-d decomposition from the current particles
  /// (collective; identical on every rank) and migrates particles to the
  /// new owners. The merged mesh is byte-identical whether or not a
  /// repartition happened — the decomposition only changes who computes
  /// which certified cell.
  bool adaptive = false;

  /// Imbalance factor (max/mean, 1 = perfectly balanced) at or above which
  /// an adaptive repartition is scheduled for the next step. Hysteresis:
  /// well-balanced runs never repartition, and after a repartition the
  /// factor must climb back over the trigger to cause another one.
  double repart_trigger = 1.25;

  /// Minimum number of steps between adaptive repartitions (thrash guard).
  int repart_cooldown = 2;

  /// Geometry backend for the per-cell clip loop: kScalar sweeps candidates
  /// one at a time, kSimd runs the batched filters four lanes wide. kAuto
  /// (default) resolves via the TESS_GEOM_BACKEND environment variable
  /// ("scalar"/"simd", default scalar) — the env override applies only to
  /// kAuto, so an explicit choice here always wins. Every backend produces
  /// byte-identical meshes (enforced by the parity suite); this is purely a
  /// performance switch.
  geom::TessBackend backend = geom::TessBackend::kAuto;
};

}  // namespace tess::core
