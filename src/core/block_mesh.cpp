#include "core/block_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace tess::core {

namespace {
// Welding quantum: Voronoi vertices computed independently from adjacent
// cells agree to ~1e-10 relative, so a 1e-7 grid merges them while keeping
// genuinely distinct vertices (>= particle-spacing scale apart) separate.
constexpr double kWeldQuantum = 1e-7;
}  // namespace

std::size_t BlockMesh::KeyHash::operator()(const Key& k) const {
  std::size_t h = static_cast<std::size_t>(k.x) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::size_t>(k.y) * 0xc2b2ae3d27d4eb4fULL + (h << 6);
  h ^= static_cast<std::size_t>(k.z) * 0x165667b19e3779f9ULL + (h >> 2);
  return h;
}

std::uint32_t BlockMesh::weld_vertex(const Vec3& v) {
  const Key key{static_cast<std::int64_t>(std::llround(v.x / kWeldQuantum)),
                static_cast<std::int64_t>(std::llround(v.y / kWeldQuantum)),
                static_cast<std::int64_t>(std::llround(v.z / kWeldQuantum))};
  const auto it = weld_map_.find(key);
  if (it != weld_map_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(vertices.size());
  vertices.push_back(v);
  weld_map_.emplace(key, idx);
  return idx;
}

void BlockMesh::add_cell(std::int64_t site_id, const geom::VoronoiCell& cell,
                         double volume, double area) {
  CellRecord rec;
  rec.site_id = site_id;
  rec.site = cell.site();
  rec.volume = volume;
  rec.area = area;
  rec.first_face = static_cast<std::uint32_t>(num_faces());
  rec.num_faces = static_cast<std::uint32_t>(cell.faces().size());

  for (const auto& f : cell.faces()) {
    for (int v : f.verts)
      face_verts.push_back(
          weld_vertex(cell.vertices()[static_cast<std::size_t>(v)]));
    face_offsets.push_back(static_cast<std::uint32_t>(face_verts.size()));
    face_neighbors.push_back(f.source);
  }
  cells.push_back(rec);
}

void BlockMesh::append(const BlockMesh& other) {
  const auto face_base = static_cast<std::uint32_t>(num_faces());
  cells.reserve(cells.size() + other.cells.size());
  for (const auto& c : other.cells) {
    CellRecord rec = c;
    rec.first_face += face_base;
    cells.push_back(rec);
  }
  face_verts.reserve(face_verts.size() + other.face_verts.size());
  for (std::size_t f = 0; f < other.num_faces(); ++f) {
    for (std::size_t i = other.face_offsets[f]; i < other.face_offsets[f + 1]; ++i)
      face_verts.push_back(
          weld_vertex(other.vertices[other.face_verts[i]]));
    face_offsets.push_back(static_cast<std::uint32_t>(face_verts.size()));
    face_neighbors.push_back(other.face_neighbors[f]);
  }
}

void BlockMesh::append_cell(const BlockMesh& src, std::size_t cell) {
  const CellRecord& c = src.cells[cell];
  CellRecord rec = c;
  rec.first_face = static_cast<std::uint32_t>(num_faces());
  for (std::size_t f = c.first_face; f < c.first_face + c.num_faces; ++f) {
    for (std::size_t i = src.face_offsets[f]; i < src.face_offsets[f + 1]; ++i)
      face_verts.push_back(weld_vertex(src.vertices[src.face_verts[i]]));
    face_offsets.push_back(static_cast<std::uint32_t>(face_verts.size()));
    face_neighbors.push_back(src.face_neighbors[f]);
  }
  cells.push_back(rec);
}

BlockMesh canonical_merge(const std::vector<BlockMesh>& blocks) {
  BlockMesh merged;
  if (blocks.empty()) return merged;
  merged.bounds = blocks.front().bounds;
  std::vector<std::pair<std::int64_t, std::pair<std::size_t, std::size_t>>>
      order;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::size_t a = 0; a < 3; ++a) {
      merged.bounds.min[a] = std::min(merged.bounds.min[a], blocks[b].bounds.min[a]);
      merged.bounds.max[a] = std::max(merged.bounds.max[a], blocks[b].bounds.max[a]);
    }
    for (std::size_t i = 0; i < blocks[b].cells.size(); ++i)
      order.push_back({blocks[b].cells[i].site_id, {b, i}});
  }
  std::sort(order.begin(), order.end());
  for (const auto& [site, loc] : order)
    merged.append_cell(blocks[loc.first], loc.second);
  return merged;
}

double BlockMesh::avg_faces_per_cell() const {
  return cells.empty() ? 0.0
                       : static_cast<double>(num_faces()) /
                             static_cast<double>(cells.size());
}

double BlockMesh::avg_verts_per_face() const {
  return num_faces() == 0 ? 0.0
                          : static_cast<double>(face_verts.size()) /
                                static_cast<double>(num_faces());
}

double BlockMesh::bytes_per_cell() const {
  if (cells.empty()) return 0.0;
  diy::Buffer buf;
  serialize(buf);
  return static_cast<double>(buf.size()) / static_cast<double>(cells.size());
}

void BlockMesh::serialize(diy::Buffer& buf) const {
  buf.write(bounds.min);
  buf.write(bounds.max);
  buf.write_vector(vertices);
  buf.write_vector(cells);
  buf.write_vector(face_offsets);
  buf.write_vector(face_verts);
  buf.write_vector(face_neighbors);
}

namespace {

template <typename Source>
BlockMesh deserialize_from(Source& buf) {
  BlockMesh m;
  m.bounds.min = buf.template read<Vec3>();
  m.bounds.max = buf.template read<Vec3>();
  m.vertices = buf.template read_vector<Vec3>();
  m.cells = buf.template read_vector<CellRecord>();
  m.face_offsets = buf.template read_vector<std::uint32_t>();
  m.face_verts = buf.template read_vector<std::uint32_t>();
  m.face_neighbors = buf.template read_vector<std::int64_t>();
  return m;
}

}  // namespace

BlockMesh BlockMesh::deserialize(diy::Buffer& buf) {
  return deserialize_from(buf);
}

BlockMesh BlockMesh::deserialize(diy::BufferView& buf) {
  return deserialize_from(buf);
}

diy::Bounds BlockMesh::peek_bounds(diy::BufferView buf) {
  diy::Bounds b;
  b.min = buf.read<Vec3>();
  b.max = buf.read<Vec3>();
  return b;
}

}  // namespace tess::core
