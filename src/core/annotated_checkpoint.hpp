// Density-annotated particle checkpoints (paper §V): "augment the output
// of particle positions with the cell volume or density at each site as an
// indication of the density of the region surrounding each particle. Such
// information could be used to guide structure detection, sampling, and
// other density-based operations."
//
// The record is 40 bytes per particle — position (24) + id (8) + the
// particle's Voronoi cell volume (8) — exactly the HACC checkpoint budget
// the paper quotes. Particles whose cells were culled or incomplete carry
// volume 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "core/block_mesh.hpp"
#include "diy/particle.hpp"

namespace tess::core {

struct AnnotatedParticle {
  geom::Vec3 pos;
  std::int64_t id = -1;
  double cell_volume = 0.0;  ///< 0 when the cell was culled/incomplete
};
static_assert(sizeof(AnnotatedParticle) == 40,
              "annotated checkpoint record must stay 40 bytes");

/// Join this block's particles with their cell volumes from `mesh`.
std::vector<AnnotatedParticle> annotate_particles(
    const std::vector<diy::Particle>& particles, const BlockMesh& mesh);

/// Collective parallel write (blocked single file, same format machinery as
/// the tessellation output). Returns total bytes.
std::uint64_t write_annotated_checkpoint(
    comm::Comm& comm, const std::string& path,
    const std::vector<AnnotatedParticle>& particles);

/// Read one block back (not collective).
std::vector<AnnotatedParticle> read_annotated_checkpoint(const std::string& path,
                                                         int block);

}  // namespace tess::core
