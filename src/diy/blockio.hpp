// Parallel blocked-file I/O, modeled on DIY's single-shared-file format.
//
// Write path (collective): each rank serializes its block, an exclusive
// scan of the block sizes yields each rank's byte offset, all ranks pwrite
// concurrently into one file, and rank 0 appends a footer index (per-block
// offset + size) plus a trailer pointing at the footer. This is the same
// algorithm the paper's tess uses against GPFS, executed against POSIX.
//
// Read path: any process can open the file, read the footer, and fetch an
// arbitrary subset of blocks — which is what the postprocessing tools (the
// "ParaView plugin" equivalent) do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "diy/serialize.hpp"

namespace tess::diy {

inline constexpr std::uint64_t kBlockFileMagic = 0x54455353424c4b31ULL;  // "TESSBLK1"

/// Collective write: rank r contributes `block` as block r of `nranks`.
/// Returns the total file size in bytes (valid on every rank).
///
/// Thread-safe in the write-behind sense: the call only touches `comm`,
/// `path`, and `block`, so a dedicated writer thread per rank (each with
/// its own tag-plane Comm, see core/pipeline.hpp) can run one collective
/// write per step while other threads of the same ranks simulate and mesh
/// — as long as any one plane issues its collectives in the same order on
/// every rank, which the pipeline's in-order queues guarantee.
std::uint64_t write_blocks(comm::Comm& comm, const std::string& path,
                           const Buffer& block);

/// Expand a per-step output path: replaces the first "%d" in `pattern`
/// with the decimal step, or appends ".step<N>" if no placeholder.
std::string step_path(const std::string& pattern, int step);

/// Append one line (a trailing '\n' is added) to `path` atomically via
/// O_APPEND — safe against concurrent appenders, used for streaming
/// per-step in-situ stats. Not collective.
void append_text_line(const std::string& path, const std::string& line);

/// Reader for a blocked file; not collective.
///
/// The constructor validates the whole footer before any block access:
/// header and trailer magic, a footer offset inside the file, a footer
/// whose entry count matches the bytes actually present, and per-block
/// (offset, size) extents that stay inside the data region. A truncated,
/// corrupted, or foreign file therefore fails here with a diagnostic
/// naming the path and the violated invariant — never as UB in a later
/// read_block (or in the mmap path, which reuses this index verbatim).
class BlockFileReader {
 public:
  explicit BlockFileReader(const std::string& path);

  [[nodiscard]] int num_blocks() const { return static_cast<int>(sizes_.size()); }
  [[nodiscard]] std::uint64_t block_size(int block) const {
    return sizes_[static_cast<std::size_t>(block)];
  }
  [[nodiscard]] std::uint64_t block_offset(int block) const {
    return offsets_[static_cast<std::size_t>(block)];
  }
  [[nodiscard]] std::uint64_t file_size() const { return file_size_; }

  /// Read one block's bytes into a Buffer positioned at the start.
  [[nodiscard]] Buffer read_block(int block) const;

 private:
  std::string path_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint64_t> sizes_;
  std::uint64_t file_size_ = 0;
};

/// Memory-mapped random access to a blocked file — the serving-side
/// counterpart of BlockFileReader (DESIGN.md §4.12). The footer index is
/// parsed and validated by the same BlockFileReader code path, then the
/// whole file is mapped read-only once; block_view() hands out zero-copy
/// cursors into the mapping, so concurrent readers share the page cache
/// with no per-query open/pread and no heap staging. Immutable after
/// construction, therefore freely shared across threads.
class MappedBlockFile {
 public:
  explicit MappedBlockFile(const std::string& path);
  ~MappedBlockFile();

  MappedBlockFile(const MappedBlockFile&) = delete;
  MappedBlockFile& operator=(const MappedBlockFile&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int num_blocks() const { return index_.num_blocks(); }
  [[nodiscard]] std::uint64_t block_size(int block) const {
    return index_.block_size(block);
  }
  [[nodiscard]] std::uint64_t file_size() const { return index_.file_size(); }

  /// Pointer to the first byte of a block inside the mapping.
  [[nodiscard]] const std::byte* block_data(int block) const;

  /// Zero-copy read cursor over one block's bytes.
  [[nodiscard]] BufferView block_view(int block) const;

 private:
  std::string path_;
  BlockFileReader index_;
  const std::byte* map_ = nullptr;
  std::size_t map_len_ = 0;
};

}  // namespace tess::diy
