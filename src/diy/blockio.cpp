#include "diy/blockio.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tess::diy {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

[[noreturn]] void corrupt(const std::string& path, const std::string& detail) {
  throw std::runtime_error("corrupt tess block file '" + path + "': " + detail);
}

void pwrite_all(int fd, const void* data, std::size_t bytes, std::uint64_t offset,
                const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::pwrite(fd, p, bytes, static_cast<off_t>(offset));
    if (n < 0) fail("pwrite", path);
    p += n;
    offset += static_cast<std::uint64_t>(n);
    bytes -= static_cast<std::size_t>(n);
  }
}

void pread_all(int fd, void* data, std::size_t bytes, std::uint64_t offset,
               const std::string& path) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::pread(fd, p, bytes, static_cast<off_t>(offset));
    if (n <= 0) fail("pread", path);
    p += n;
    offset += static_cast<std::uint64_t>(n);
    bytes -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string step_path(const std::string& pattern, int step) {
  const auto pos = pattern.find("%d");
  if (pos == std::string::npos)
    return pattern + ".step" + std::to_string(step);
  return pattern.substr(0, pos) + std::to_string(step) +
         pattern.substr(pos + 2);
}

void append_text_line(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) fail("open", path);
  std::string buf = line;
  buf.push_back('\n');
  // A single write() to an O_APPEND fd is atomic for these line sizes, so
  // concurrent appenders interleave whole lines, never fragments.
  const char* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      ::close(fd);
      fail("append", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::close(fd);
}

std::uint64_t write_blocks(comm::Comm& comm, const std::string& path,
                           const Buffer& block) {
  TESS_SPAN("diy.write_blocks");
  TESS_COUNT("diy.block_bytes_written", block.size());
  // Rank 0 creates/truncates the file before anyone writes into it.
  if (comm.rank() == 0) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("create", path);
    ::close(fd);
  }
  comm.barrier();

  // Header is just the magic; data blocks follow back to back.
  const std::uint64_t header = sizeof(std::uint64_t);
  const auto my_size = static_cast<std::uint64_t>(block.size());
  const std::uint64_t my_offset = header + comm.exscan_sum(my_size);

  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) fail("open", path);
  if (!block.data().empty())
    pwrite_all(fd, block.data().data(), block.size(), my_offset, path);

  // Footer: per-block (offset, size) gathered in rank order, then the
  // footer offset and the magic, written by rank 0 once all data is down.
  const auto offsets = comm.gather(my_offset, 0);
  const auto sizes = comm.gather(my_size, 0);
  std::uint64_t total = 0;
  if (comm.rank() == 0) {
    pwrite_all(fd, &kBlockFileMagic, sizeof(kBlockFileMagic), 0, path);
    std::uint64_t footer_off = header;
    for (auto s : sizes) footer_off += s;
    Buffer footer;
    footer.write<std::uint64_t>(static_cast<std::uint64_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      footer.write<std::uint64_t>(offsets[static_cast<std::size_t>(r)]);
      footer.write<std::uint64_t>(sizes[static_cast<std::size_t>(r)]);
    }
    footer.write<std::uint64_t>(footer_off);
    footer.write<std::uint64_t>(kBlockFileMagic);
    pwrite_all(fd, footer.data().data(), footer.size(), footer_off, path);
    total = footer_off + footer.size();
  }
  ::close(fd);
  comm.barrier();
  std::vector<std::uint64_t> box{total};
  comm.broadcast(box, 0);
  return box[0];
}

BlockFileReader::BlockFileReader(const std::string& path) : path_(path) {
  constexpr std::uint64_t kWord = sizeof(std::uint64_t);
  constexpr std::uint64_t kHeader = kWord;  // leading magic
  // Smallest legal file: magic + empty footer (count, footer_off, magic).
  constexpr std::uint64_t kMinSize = 4 * kWord;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("stat", path);
  }
  file_size_ = static_cast<std::uint64_t>(st.st_size);

  try {
    if (file_size_ < kMinSize)
      corrupt(path, "truncated: " + std::to_string(file_size_) +
                        " bytes, minimum is " + std::to_string(kMinSize));

    std::uint64_t trailer[2];
    pread_all(fd, trailer, sizeof(trailer), file_size_ - sizeof(trailer), path);
    std::uint64_t head_magic = 0;
    pread_all(fd, &head_magic, sizeof(head_magic), 0, path);
    if (head_magic != kBlockFileMagic)
      corrupt(path, "bad header magic (not a tess block file)");
    if (trailer[1] != kBlockFileMagic)
      corrupt(path, "bad trailer magic (truncated or overwritten file)");

    // The footer must start after the header and leave room for its own
    // fixed part (count + footer_off + magic) before the end of the file.
    const std::uint64_t footer_off = trailer[0];
    if (footer_off < kHeader || footer_off > file_size_ - 3 * kWord)
      corrupt(path, "footer offset " + std::to_string(footer_off) +
                        " out of range for a " + std::to_string(file_size_) +
                        "-byte file");

    std::uint64_t nblocks = 0;
    pread_all(fd, &nblocks, sizeof(nblocks), footer_off, path);
    // Exactly nblocks (offset, size) pairs must fit between the count and
    // the trailer; a mismatch means the count or the file length is wrong.
    const std::uint64_t entry_bytes = file_size_ - footer_off - 3 * kWord;
    if (entry_bytes % (2 * kWord) != 0 || nblocks != entry_bytes / (2 * kWord))
      corrupt(path, "footer claims " + std::to_string(nblocks) +
                        " blocks but has room for " +
                        std::to_string(entry_bytes / (2 * kWord)));

    offsets_.resize(nblocks);
    sizes_.resize(nblocks);
    std::vector<std::uint64_t> entries(2 * nblocks);
    if (nblocks > 0)
      pread_all(fd, entries.data(), entries.size() * sizeof(std::uint64_t),
                footer_off + kWord, path);
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      const std::uint64_t offset = entries[2 * b];
      const std::uint64_t size = entries[2 * b + 1];
      // Blocks live in [header, footer_off); the subtraction order avoids
      // overflow on hostile (offset, size) pairs.
      if (offset < kHeader || offset > footer_off || size > footer_off - offset)
        corrupt(path, "block " + std::to_string(b) + " extent (offset " +
                          std::to_string(offset) + ", size " +
                          std::to_string(size) +
                          ") outside the data region [" +
                          std::to_string(kHeader) + ", " +
                          std::to_string(footer_off) + ")");
      offsets_[b] = offset;
      sizes_[b] = size;
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

MappedBlockFile::MappedBlockFile(const std::string& path)
    : path_(path), index_(path) {
  TESS_SPAN("diy.mmap_open");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("stat", path);
  }
  // The index was parsed from this same path moments ago; a size change in
  // between means someone is rewriting the file under us — the validated
  // extents would no longer be trustworthy.
  if (static_cast<std::uint64_t>(st.st_size) != index_.file_size()) {
    ::close(fd);
    corrupt(path, "file size changed while opening (concurrent writer?)");
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) fail("mmap", path);
  map_ = static_cast<const std::byte*>(map);
  map_len_ = static_cast<std::size_t>(st.st_size);
  TESS_COUNT("diy.mmap_bytes", map_len_);
}

MappedBlockFile::~MappedBlockFile() {
  if (map_ != nullptr)
    ::munmap(const_cast<std::byte*>(map_), map_len_);
}

const std::byte* MappedBlockFile::block_data(int block) const {
  if (block < 0 || block >= num_blocks())
    throw std::out_of_range("MappedBlockFile: block index");
  return map_ + index_.block_offset(block);
}

BufferView MappedBlockFile::block_view(int block) const {
  return {block_data(block),
          static_cast<std::size_t>(index_.block_size(block))};
}

Buffer BlockFileReader::read_block(int block) const {
  if (block < 0 || block >= num_blocks())
    throw std::out_of_range("BlockFileReader: block index");
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path_);
  std::vector<std::byte> bytes(sizes_[static_cast<std::size_t>(block)]);
  if (!bytes.empty())
    pread_all(fd, bytes.data(), bytes.size(), offsets_[static_cast<std::size_t>(block)],
              path_);
  ::close(fd);
  return Buffer(std::move(bytes));
}

}  // namespace tess::diy
