// Collective construction of mass-weighted k-d decompositions.
//
// The adaptive loop (core/tessellator) repartitions between time steps:
// every rank contributes a deterministic sample of its particle positions,
// rank 0 builds the recursive-bisection split tree over the union, and the
// trivially-copyable split nodes are broadcast so all ranks reconstruct an
// identical Decomposition. Particle migration to the new owners reuses
// migrate_items (exchange.hpp).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "comm/comm.hpp"
#include "diy/decomposition.hpp"
#include "diy/particle.hpp"

namespace tess::diy {

/// Deterministic stride sample of local particle positions: at most
/// `max_sample` positions, every k-th particle. Keeps the rank-0 build
/// cost bounded; the k-d tree only needs the density shape, not every
/// particle.
[[nodiscard]] std::vector<Vec3> sample_positions(
    const std::vector<Particle>& mine, std::size_t max_sample);

/// Collective over `comm`: build a mass-weighted k-d decomposition of the
/// same domain and periodicity as `like`, with one block per rank, from
/// the union of all ranks' particle samples. Every rank returns an
/// identical tree (rank 0 builds, the split nodes are broadcast).
[[nodiscard]] std::unique_ptr<Decomposition> collective_kd(
    comm::Comm& comm, const Decomposition& like,
    const std::vector<Particle>& mine, std::size_t max_sample_per_rank = 65536);

}  // namespace tess::diy
