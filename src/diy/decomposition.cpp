#include "diy/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tess::diy {

double Bounds::distance(const Vec3& p) const {
  double d2 = 0.0;
  for (std::size_t a = 0; a < 3; ++a) {
    double d = 0.0;
    if (p[a] < min[a]) d = min[a] - p[a];
    if (p[a] > max[a]) d = p[a] - max[a];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

double Bounds::box_distance(const Bounds& o) const {
  double d2 = 0.0;
  for (std::size_t a = 0; a < 3; ++a) {
    double d = 0.0;
    if (o.min[a] > max[a]) d = o.min[a] - max[a];
    else if (min[a] > o.max[a]) d = min[a] - o.max[a];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

Decomposition::Decomposition(const Vec3& domain_min, const Vec3& domain_max,
                             const std::array<int, 3>& blocks_per_dim,
                             bool periodic)
    : domain_min_(domain_min), domain_max_(domain_max), dims_(blocks_per_dim),
      periodic_(periodic), kind_(DecompKind::kGrid) {
  for (int d : dims_)
    if (d < 1) throw std::invalid_argument("Decomposition: dims must be >= 1");
  for (std::size_t a = 0; a < 3; ++a)
    if (!(domain_max_[a] > domain_min_[a]))
      throw std::invalid_argument("Decomposition: empty domain");
  nblocks_ = dims_[0] * dims_[1] * dims_[2];
}

Decomposition::Decomposition(const Vec3& domain_min, const Vec3& domain_max,
                             bool periodic, int nblocks,
                             std::vector<KdSplit> splits)
    : domain_min_(domain_min), domain_max_(domain_max), periodic_(periodic),
      kind_(DecompKind::kTree), nblocks_(nblocks), splits_(std::move(splits)) {
  for (std::size_t a = 0; a < 3; ++a)
    if (!(domain_max_[a] > domain_min_[a]))
      throw std::invalid_argument("Decomposition: empty domain");
  if (nblocks_ < 1)
    throw std::invalid_argument("Decomposition: nblocks must be >= 1");
  if (splits_.size() + 1 != static_cast<std::size_t>(nblocks_))
    throw std::invalid_argument("Decomposition: split count must be nblocks-1");
  build_tree_bounds();
}

void Decomposition::build_tree_bounds() {
  tree_bounds_.assign(nblocks_, Bounds{});
  std::vector<char> seen(nblocks_, 0);
  struct Item {
    int child;  // >= 0: split node index, < 0: leaf block ~child
    Bounds box;
  };
  std::vector<Item> stack;
  stack.push_back({splits_.empty() ? ~0 : 0, Bounds{domain_min_, domain_max_}});
  int leaves = 0;
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    if (it.child < 0) {
      const int b = ~it.child;
      if (b < 0 || b >= nblocks_ || seen[b])
        throw std::invalid_argument("Decomposition: bad k-d leaf block id");
      seen[b] = 1;
      tree_bounds_[b] = it.box;
      ++leaves;
      continue;
    }
    if (static_cast<std::size_t>(it.child) >= splits_.size())
      throw std::invalid_argument("Decomposition: k-d node index out of range");
    const KdSplit& s = splits_[it.child];
    if (s.axis < 0 || s.axis > 2 ||
        !(s.coord > it.box.min[s.axis] && s.coord < it.box.max[s.axis]))
      throw std::invalid_argument("Decomposition: k-d split outside its box");
    Bounds lbox = it.box, rbox = it.box;
    lbox.max[s.axis] = s.coord;
    rbox.min[s.axis] = s.coord;
    stack.push_back({s.left, lbox});
    stack.push_back({s.right, rbox});
    if (stack.size() > splits_.size() + 1)
      throw std::invalid_argument("Decomposition: malformed k-d tree");
  }
  if (leaves != nblocks_)
    throw std::invalid_argument("Decomposition: k-d tree leaf count mismatch");
}

namespace {

struct KdSample {
  Vec3 p;
  double w;
};

// Weighted split coordinate: the position along `axis` where the prefix
// weight of the (sorted) sample best matches `frac` of the total. Ties are
// grouped at distinct-coordinate granularity so the result is independent
// of input order; the cut lands midway between two adjacent distinct
// coordinates so no sample sits exactly on the plane.
double choose_split(std::vector<KdSample>::iterator lo,
                    std::vector<KdSample>::iterator hi, int axis,
                    const Bounds& box, double frac) {
  const double geometric =
      box.min[axis] + frac * (box.max[axis] - box.min[axis]);
  if (lo == hi) return geometric;
  std::sort(lo, hi, [axis](const KdSample& a, const KdSample& b) {
    return a.p[axis] < b.p[axis];
  });
  // Distinct coordinates with aggregated weights.
  std::vector<std::pair<double, double>> groups;  // (coord, weight)
  for (auto it = lo; it != hi; ++it) {
    if (!groups.empty() && groups.back().first == it->p[axis])
      groups.back().second += it->w;
    else
      groups.emplace_back(it->p[axis], it->w);
  }
  if (groups.size() < 2) return geometric;
  double total = 0.0;
  for (const auto& g : groups) total += g.second;
  const double target = frac * total;
  double best = geometric, best_err = std::abs(target);  // empty prefix
  double prefix = 0.0;
  bool have = false;
  for (std::size_t g = 0; g + 1 < groups.size(); ++g) {
    prefix += groups[g].second;
    const double err = std::abs(prefix - target);
    const double cut = 0.5 * (groups[g].first + groups[g + 1].first);
    if (!have || err < best_err) {
      best = cut;
      best_err = err;
      have = true;
    }
  }
  return best;
}

int longest_axis(const Bounds& box) {
  int axis = 0;
  double w = box.max[0] - box.min[0];
  for (int a = 1; a < 3; ++a) {
    const double wa = box.max[a] - box.min[a];
    if (wa > w) {
      w = wa;
      axis = a;
    }
  }
  return axis;
}

int build_kd(std::vector<KdSplit>& splits, std::vector<KdSample>& pts,
             std::size_t lo, std::size_t hi, const Bounds& box, int b0,
             int n) {
  if (n == 1) return ~b0;
  const int nl = n / 2;
  const int axis = longest_axis(box);
  const double frac = static_cast<double>(nl) / n;
  double c = choose_split(pts.begin() + lo, pts.begin() + hi, axis, box, frac);
  // Keep both child boxes non-degenerate even for pathological samples.
  const double margin = 1e-3 * (box.max[axis] - box.min[axis]);
  c = std::clamp(c, box.min[axis] + margin, box.max[axis] - margin);
  const auto mid =
      std::partition(pts.begin() + lo, pts.begin() + hi,
                     [axis, c](const KdSample& s) { return s.p[axis] < c; });
  const std::size_t m = static_cast<std::size_t>(mid - pts.begin());
  const int node = static_cast<int>(splits.size());
  splits.push_back({axis, c, 0, 0});
  Bounds lbox = box, rbox = box;
  lbox.max[axis] = c;
  rbox.min[axis] = c;
  const int l = build_kd(splits, pts, lo, m, lbox, b0, nl);
  const int r = build_kd(splits, pts, m, hi, rbox, b0 + nl, n - nl);
  splits[node].left = l;
  splits[node].right = r;
  return node;
}

}  // namespace

Decomposition Decomposition::kd(const Vec3& domain_min, const Vec3& domain_max,
                                bool periodic, int nblocks,
                                const std::vector<Vec3>& points,
                                const std::vector<double>* weights) {
  if (nblocks < 1)
    throw std::invalid_argument("Decomposition::kd: nblocks must be >= 1");
  if (weights && weights->size() != points.size())
    throw std::invalid_argument("Decomposition::kd: weights/points mismatch");
  // Wrap samples into the primary domain so the split tree tiles it.
  Decomposition domain_only(domain_min, domain_max, {1, 1, 1}, periodic);
  std::vector<KdSample> pts;
  pts.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    pts.push_back({domain_only.wrap(points[i]), weights ? (*weights)[i] : 1.0});
  std::vector<KdSplit> splits;
  if (nblocks > 1) {
    splits.reserve(nblocks - 1);
    build_kd(splits, pts, 0, pts.size(), Bounds{domain_min, domain_max}, 0,
             nblocks);
  }
  return Decomposition(domain_min, domain_max, periodic, nblocks,
                       std::move(splits));
}

std::array<int, 3> Decomposition::factor(int nblocks) {
  if (nblocks < 1) throw std::invalid_argument("factor: nblocks must be >= 1");
  // Greedy: repeatedly split off the largest prime factor onto the axis
  // with the smallest current extent, yielding a near-cubic grid.
  std::array<int, 3> dims{1, 1, 1};
  int n = nblocks;
  for (int f = 2; f * f <= n;) {
    if (n % f == 0) {
      auto it = std::min_element(dims.begin(), dims.end());
      *it *= f;
      n /= f;
    } else {
      ++f;
    }
  }
  if (n > 1) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= n;
  }
  std::sort(dims.begin(), dims.end());
  return dims;
}

const std::array<int, 3>& Decomposition::dims() const {
  if (kind_ != DecompKind::kGrid)
    throw std::logic_error("Decomposition::dims: grid layout only");
  return dims_;
}

Bounds Decomposition::block_bounds(int block) const {
  if (kind_ == DecompKind::kTree) {
    if (block < 0 || block >= nblocks_)
      throw std::out_of_range("Decomposition: block index");
    return tree_bounds_[block];
  }
  const auto c = block_coords(block);
  const Vec3 size = domain_size();
  Bounds b;
  for (std::size_t a = 0; a < 3; ++a) {
    const double w = size[a] / dims_[a];
    b.min[a] = domain_min_[a] + w * c[a];
    b.max[a] = (c[a] + 1 == dims_[a]) ? domain_max_[a] : domain_min_[a] + w * (c[a] + 1);
  }
  return b;
}

std::array<int, 3> Decomposition::block_coords(int block) const {
  if (kind_ != DecompKind::kGrid)
    throw std::logic_error("Decomposition::block_coords: grid layout only");
  if (block < 0 || block >= num_blocks())
    throw std::out_of_range("Decomposition: block index");
  return {block % dims_[0], (block / dims_[0]) % dims_[1],
          block / (dims_[0] * dims_[1])};
}

int Decomposition::block_index(const std::array<int, 3>& c) const {
  if (kind_ != DecompKind::kGrid)
    throw std::logic_error("Decomposition::block_index: grid layout only");
  return (c[2] * dims_[1] + c[1]) * dims_[0] + c[0];
}

Vec3 Decomposition::wrap(const Vec3& p) const {
  if (!periodic_) return p;
  Vec3 q = p;
  const Vec3 size = domain_size();
  for (std::size_t a = 0; a < 3; ++a) {
    while (q[a] < domain_min_[a]) q[a] += size[a];
    while (q[a] >= domain_max_[a]) q[a] -= size[a];
  }
  return q;
}

int Decomposition::block_of_point(const Vec3& p) const {
  const Vec3 q = wrap(p);
  if (kind_ == DecompKind::kTree) {
    if (splits_.empty()) return 0;
    int node = 0;
    for (;;) {
      const KdSplit& s = splits_[node];
      const int child = (q[s.axis] < s.coord) ? s.left : s.right;
      if (child < 0) return ~child;
      node = child;
    }
  }
  const Vec3 size = domain_size();
  std::array<int, 3> c{};
  for (std::size_t a = 0; a < 3; ++a) {
    const double rel = (q[a] - domain_min_[a]) / size[a] * dims_[a];
    c[a] = std::clamp(static_cast<int>(rel), 0, dims_[a] - 1);
  }
  return block_index(c);
}

std::vector<Neighbor> Decomposition::neighbors(int block) const {
  if (kind_ == DecompKind::kTree) return neighbors_within(block, 0.0);
  const auto c = block_coords(block);
  const Vec3 size = domain_size();
  std::vector<Neighbor> out;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        std::array<int, 3> nc{c[0] + dx, c[1] + dy, c[2] + dz};
        Vec3 shift{};
        bool valid = true;
        for (std::size_t a = 0; a < 3; ++a) {
          if (nc[a] < 0) {
            if (!periodic_) { valid = false; break; }
            nc[a] += dims_[a];
            // A point sent to this neighbor crosses the low domain face, so
            // it reappears near the high face: translate by +size.
            shift[a] += size[a];
          } else if (nc[a] >= dims_[a]) {
            if (!periodic_) { valid = false; break; }
            nc[a] -= dims_[a];
            shift[a] -= size[a];
          }
        }
        if (!valid) continue;
        const Neighbor nb{block_index(nc), shift};
        if (std::find(out.begin(), out.end(), nb) == out.end()) out.push_back(nb);
      }
  return out;
}

std::vector<Neighbor> Decomposition::compute_neighbors_within(
    int block, double reach) const {
  const Bounds me = block_bounds(block);
  const Vec3 size = domain_size();
  const int span = periodic_ ? 1 : 0;
  std::vector<Neighbor> out;
  for (int b = 0; b < nblocks_; ++b) {
    const Bounds bb = block_bounds(b);
    for (int sz = -span; sz <= span; ++sz)
      for (int sy = -span; sy <= span; ++sy)
        for (int sx = -span; sx <= span; ++sx) {
          if (b == block && sx == 0 && sy == 0 && sz == 0) continue;
          const Vec3 s{sx * size.x, sy * size.y, sz * size.z};
          if (me.shifted(s).box_distance(bb) <= reach) out.push_back({b, s});
        }
  }
  return out;
}

std::vector<Neighbor> Decomposition::neighbors_within(int block,
                                                      double reach) const {
  if (block < 0 || block >= nblocks_)
    throw std::out_of_range("Decomposition: block index");
  const auto key = std::make_pair(block, reach);
  {
    std::lock_guard<std::mutex> lock(nbr_mutex_);
    auto it = nbr_cache_.find(key);
    if (it != nbr_cache_.end()) return *it->second;
  }
  auto computed = std::make_shared<const std::vector<Neighbor>>(
      compute_neighbors_within(block, reach));
  std::lock_guard<std::mutex> lock(nbr_mutex_);
  auto [it, inserted] = nbr_cache_.emplace(key, std::move(computed));
  return *it->second;
}

}  // namespace tess::diy
