#include "diy/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tess::diy {

double Bounds::distance(const Vec3& p) const {
  double d2 = 0.0;
  for (std::size_t a = 0; a < 3; ++a) {
    double d = 0.0;
    if (p[a] < min[a]) d = min[a] - p[a];
    if (p[a] > max[a]) d = p[a] - max[a];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

Decomposition::Decomposition(const Vec3& domain_min, const Vec3& domain_max,
                             const std::array<int, 3>& blocks_per_dim,
                             bool periodic)
    : domain_min_(domain_min), domain_max_(domain_max), dims_(blocks_per_dim),
      periodic_(periodic) {
  for (int d : dims_)
    if (d < 1) throw std::invalid_argument("Decomposition: dims must be >= 1");
  for (std::size_t a = 0; a < 3; ++a)
    if (!(domain_max_[a] > domain_min_[a]))
      throw std::invalid_argument("Decomposition: empty domain");
}

std::array<int, 3> Decomposition::factor(int nblocks) {
  if (nblocks < 1) throw std::invalid_argument("factor: nblocks must be >= 1");
  // Greedy: repeatedly split off the largest prime factor onto the axis
  // with the smallest current extent, yielding a near-cubic grid.
  std::array<int, 3> dims{1, 1, 1};
  int n = nblocks;
  for (int f = 2; f * f <= n;) {
    if (n % f == 0) {
      auto it = std::min_element(dims.begin(), dims.end());
      *it *= f;
      n /= f;
    } else {
      ++f;
    }
  }
  if (n > 1) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= n;
  }
  std::sort(dims.begin(), dims.end());
  return dims;
}

Bounds Decomposition::block_bounds(int block) const {
  const auto c = block_coords(block);
  const Vec3 size = domain_size();
  Bounds b;
  for (std::size_t a = 0; a < 3; ++a) {
    const double w = size[a] / dims_[a];
    b.min[a] = domain_min_[a] + w * c[a];
    b.max[a] = (c[a] + 1 == dims_[a]) ? domain_max_[a] : domain_min_[a] + w * (c[a] + 1);
  }
  return b;
}

std::array<int, 3> Decomposition::block_coords(int block) const {
  if (block < 0 || block >= num_blocks())
    throw std::out_of_range("Decomposition: block index");
  return {block % dims_[0], (block / dims_[0]) % dims_[1],
          block / (dims_[0] * dims_[1])};
}

int Decomposition::block_index(const std::array<int, 3>& c) const {
  return (c[2] * dims_[1] + c[1]) * dims_[0] + c[0];
}

Vec3 Decomposition::wrap(const Vec3& p) const {
  if (!periodic_) return p;
  Vec3 q = p;
  const Vec3 size = domain_size();
  for (std::size_t a = 0; a < 3; ++a) {
    while (q[a] < domain_min_[a]) q[a] += size[a];
    while (q[a] >= domain_max_[a]) q[a] -= size[a];
  }
  return q;
}

int Decomposition::block_of_point(const Vec3& p) const {
  const Vec3 q = wrap(p);
  const Vec3 size = domain_size();
  std::array<int, 3> c{};
  for (std::size_t a = 0; a < 3; ++a) {
    const double rel = (q[a] - domain_min_[a]) / size[a] * dims_[a];
    c[a] = std::clamp(static_cast<int>(rel), 0, dims_[a] - 1);
  }
  return block_index(c);
}

std::vector<Neighbor> Decomposition::neighbors(int block) const {
  const auto c = block_coords(block);
  const Vec3 size = domain_size();
  std::vector<Neighbor> out;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        std::array<int, 3> nc{c[0] + dx, c[1] + dy, c[2] + dz};
        Vec3 shift{};
        bool valid = true;
        for (std::size_t a = 0; a < 3; ++a) {
          if (nc[a] < 0) {
            if (!periodic_) { valid = false; break; }
            nc[a] += dims_[a];
            // A point sent to this neighbor crosses the low domain face, so
            // it reappears near the high face: translate by +size.
            shift[a] += size[a];
          } else if (nc[a] >= dims_[a]) {
            if (!periodic_) { valid = false; break; }
            nc[a] -= dims_[a];
            shift[a] -= size[a];
          }
        }
        if (!valid) continue;
        const Neighbor nb{block_index(nc), shift};
        if (std::find(out.begin(), out.end(), nb) == out.end()) out.push_back(nb);
      }
  return out;
}

}  // namespace tess::diy
