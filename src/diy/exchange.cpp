#include "diy/exchange.hpp"

#include <map>
#include <stdexcept>

namespace tess::diy {

Exchanger::Exchanger(comm::Comm& comm, const Decomposition& decomp)
    : comm_(&comm), decomp_(&decomp) {
  if (decomp.num_blocks() != comm.size())
    throw std::invalid_argument(
        "Exchanger: one block per rank required (num_blocks != comm size)");
}

std::vector<Particle> Exchanger::exchange_ghost(const std::vector<Particle>& mine,
                                                double ghost) {
  const auto nbrs = decomp_->neighbors(my_block());

  // Target-point destination selection: particle p goes to neighbor n iff
  // its (periodically shifted) image lies within the ghost distance of n's
  // block. Outgoing particles are grouped per destination *block* so each
  // pair of ranks exchanges exactly one message.
  std::map<int, std::vector<Particle>> outgoing;  // ordered for determinism
  std::vector<Particle> self_images;
  for (const auto& nb : nbrs) outgoing[nb.block];  // ensure symmetric message set
  outgoing.erase(my_block());

  last_sent_ = 0;
  for (const auto& p : mine) {
    for (const auto& nb : nbrs) {
      const Particle img{p.pos + nb.shift, p.id};
      if (decomp_->block_bounds(nb.block).distance(img.pos) <= ghost) {
        if (nb.block == my_block()) {
          // Wrap-around image of this block onto itself (tiny decompositions).
          self_images.push_back(img);
        } else {
          outgoing[nb.block].push_back(img);
          ++last_sent_;
        }
      }
    }
  }

  for (auto& [dest, parts] : outgoing) comm_->send(dest, kTagGhost, parts);

  std::vector<Particle> ghosts = std::move(self_images);
  for (const auto& [src, parts] : outgoing) {
    (void)parts;
    auto in = comm_->recv<Particle>(src, kTagGhost);
    ghosts.insert(ghosts.end(), in.begin(), in.end());
  }
  return ghosts;
}

std::vector<Particle> Exchanger::migrate(std::vector<Particle> mine) {
  return migrate_items(*comm_, *decomp_, std::move(mine),
                       [](Particle& p) -> geom::Vec3& { return p.pos; },
                       kTagMigrate);
}

}  // namespace tess::diy
