#include "diy/exchange.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tess::diy {

Exchanger::Exchanger(comm::Comm& comm, const Decomposition& decomp)
    : comm_(&comm), decomp_(&decomp) {
  if (decomp.num_blocks() != comm.size())
    throw std::invalid_argument(
        "Exchanger: one block per rank required (num_blocks != comm size)");

  nbrs_ = decomp.neighbors(my_block());
  nbr_bounds_.reserve(nbrs_.size());
  for (const auto& nb : nbrs_) nbr_bounds_.push_back(decomp.block_bounds(nb.block));

  for (const auto& nb : nbrs_)
    if (nb.block != my_block()) send_blocks_.push_back(nb.block);
  std::sort(send_blocks_.begin(), send_blocks_.end());
  send_blocks_.erase(std::unique(send_blocks_.begin(), send_blocks_.end()),
                     send_blocks_.end());
  send_bufs_.resize(send_blocks_.size());

  nbr_slot_.reserve(nbrs_.size());
  for (const auto& nb : nbrs_) {
    if (nb.block == my_block()) {
      nbr_slot_.push_back(-1);
    } else {
      const auto it =
          std::lower_bound(send_blocks_.begin(), send_blocks_.end(), nb.block);
      nbr_slot_.push_back(static_cast<int>(it - send_blocks_.begin()));
    }
  }
}

std::vector<Particle> Exchanger::exchange_ghost(const std::vector<Particle>& mine,
                                                double ghost) {
  TESS_SPAN("diy.exchange_ghost");
  // d >= 0 always, so the open lower bound -1 admits the whole ball [0, ghost].
  return exchange_annulus(mine, -1.0, ghost);
}

std::vector<Particle> Exchanger::exchange_ghost_delta(
    const std::vector<Particle>& mine, double ghost_prev, double ghost_next) {
  TESS_SPAN("diy.exchange_ghost_delta");
  return exchange_annulus(mine, ghost_prev, ghost_next);
}

std::vector<Particle> Exchanger::exchange_annulus(const std::vector<Particle>& mine,
                                                  double ghost_prev,
                                                  double ghost_next) {
  TESS_SPAN("diy.exchange_annulus");
  // Target-point destination selection: particle p goes to neighbor n iff
  // its (periodically shifted) image lies within the (ghost_prev, ghost_next]
  // annulus around n's block. Outgoing particles are grouped per destination
  // *block* — pushes interleave in (particle, neighbor) loop order, exactly
  // as the original map-based grouping did — so each pair of ranks exchanges
  // exactly one message with deterministic content. Every destination gets a
  // message even when its buffer is empty (symmetric message set).
  for (auto& buf : send_bufs_) buf.clear();
  self_buf_.clear();

  last_sent_ = 0;
  for (const auto& p : mine) {
    for (std::size_t i = 0; i < nbrs_.size(); ++i) {
      const Particle img{p.pos + nbrs_[i].shift, p.id};
      const double d = nbr_bounds_[i].distance(img.pos);
      if (d <= ghost_next && d > ghost_prev) {
        const int slot = nbr_slot_[i];
        if (slot < 0) {
          // Wrap-around image of this block onto itself (tiny decompositions).
          self_buf_.push_back(img);
        } else {
          send_bufs_[static_cast<std::size_t>(slot)].push_back(img);
          ++last_sent_;
        }
      }
    }
  }

  for (std::size_t s = 0; s < send_blocks_.size(); ++s)
    comm_->send(send_blocks_[s], kTagGhost, send_bufs_[s]);

  std::vector<Particle> ghosts = self_buf_;
  for (const int src : send_blocks_) {
    auto in = comm_->recv<Particle>(src, kTagGhost);
    ghosts.insert(ghosts.end(), in.begin(), in.end());
  }
  TESS_COUNT("diy.ghost_sent", last_sent_);
  TESS_COUNT("diy.ghost_received", ghosts.size());
  return ghosts;
}

std::vector<Particle> Exchanger::migrate(std::vector<Particle> mine) {
  TESS_SPAN("diy.migrate");
  return migrate_items(*comm_, *decomp_, std::move(mine),
                       [](Particle& p) -> geom::Vec3& { return p.pos; },
                       kTagMigrate);
}

}  // namespace tess::diy
