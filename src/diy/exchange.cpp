#include "diy/exchange.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "comm/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tess::diy {

namespace {
/// Bounded-retry receive budget used while the fault injector is armed:
/// kRecvAttempts attempts with exponential backoff starting at
/// kRecvBaseTimeout (25, 50, 100, 200 ms). Each attempt also ticks the
/// channel's limbo recovery twice (see Mailbox::pop_for), so the budget is
/// 8 recovery ticks per neighbor per pass — what a drop rule's
/// recover_after is measured against.
constexpr std::chrono::milliseconds kRecvBaseTimeout{25};
constexpr int kRecvAttempts = 4;
}  // namespace

Exchanger::Exchanger(comm::Comm& comm, const Decomposition& decomp)
    : comm_(&comm), decomp_(&decomp) {
  if (decomp.num_blocks() != comm.size())
    throw std::invalid_argument(
        "Exchanger: one block per rank required (num_blocks != comm size)");
}

void Exchanger::ensure_reach(double reach) {
  if (reach == reach_) return;
  reach_ = reach;
  nbrs_ = decomp_->neighbors_within(my_block(), reach);
  nbr_bounds_.clear();
  nbr_bounds_.reserve(nbrs_.size());
  for (const auto& nb : nbrs_)
    nbr_bounds_.push_back(decomp_->block_bounds(nb.block));

  send_blocks_.clear();
  for (const auto& nb : nbrs_)
    if (nb.block != my_block()) send_blocks_.push_back(nb.block);
  std::sort(send_blocks_.begin(), send_blocks_.end());
  send_blocks_.erase(std::unique(send_blocks_.begin(), send_blocks_.end()),
                     send_blocks_.end());
  send_bufs_.assign(send_blocks_.size(), {});

  nbr_slot_.clear();
  nbr_slot_.reserve(nbrs_.size());
  for (const auto& nb : nbrs_) {
    if (nb.block == my_block()) {
      nbr_slot_.push_back(-1);
    } else {
      const auto it =
          std::lower_bound(send_blocks_.begin(), send_blocks_.end(), nb.block);
      nbr_slot_.push_back(static_cast<int>(it - send_blocks_.begin()));
    }
  }
}

std::vector<Particle> Exchanger::exchange_ghost(const std::vector<Particle>& mine,
                                                double ghost) {
  TESS_SPAN("diy.exchange_ghost");
  // d >= 0 always, so the open lower bound -1 admits the whole ball [0, ghost].
  return exchange_annulus(mine, -1.0, ghost);
}

std::vector<Particle> Exchanger::exchange_ghost_delta(
    const std::vector<Particle>& mine, double ghost_prev, double ghost_next) {
  TESS_SPAN("diy.exchange_ghost_delta");
  return exchange_annulus(mine, ghost_prev, ghost_next);
}

std::vector<Particle> Exchanger::exchange_annulus(const std::vector<Particle>& mine,
                                                  double ghost_prev,
                                                  double ghost_next) {
  TESS_SPAN("diy.exchange_annulus");
  const bool armed = comm::faults().armed();
  if (armed && in_progress_) {
    // Resuming a pass that timed out: the annulus must be identical —
    // resending under a different parameterization would desynchronize the
    // per-channel sequence streams.
    if (ghost_prev != pending_prev_ || ghost_next != pending_next_)
      throw std::logic_error(
          "Exchanger: resumed exchange must reuse the incomplete pass's "
          "annulus");
    TESS_COUNT("diy.exchange_resumed", 1);
    return finish_exchange();
  }

  // Discover the neighbor set for this pass's reach. The annulus partition
  // property survives the per-pass set change: a neighbor first reachable
  // at ghost_next has box distance > ghost_prev, so none of its annulus
  // particles could have been owed by an earlier pass.
  ensure_reach(ghost_next);

  // Target-point destination selection: particle p goes to neighbor n iff
  // its (periodically shifted) image lies within the (ghost_prev, ghost_next]
  // annulus around n's block. Outgoing particles are grouped per destination
  // *block* — pushes interleave in (particle, neighbor) loop order, exactly
  // as the original map-based grouping did — so each pair of ranks exchanges
  // exactly one message with deterministic content. Every destination gets a
  // message even when its buffer is empty (symmetric message set).
  for (auto& buf : send_bufs_) buf.clear();
  self_buf_.clear();

  last_sent_ = 0;
  for (const auto& p : mine) {
    for (std::size_t i = 0; i < nbrs_.size(); ++i) {
      const Particle img{p.pos + nbrs_[i].shift, p.id};
      const double d = nbr_bounds_[i].distance(img.pos);
      if (d <= ghost_next && d > ghost_prev) {
        const int slot = nbr_slot_[i];
        if (slot < 0) {
          // Wrap-around image of this block onto itself (tiny decompositions).
          self_buf_.push_back(img);
        } else {
          send_bufs_[static_cast<std::size_t>(slot)].push_back(img);
          ++last_sent_;
        }
      }
    }
  }

  for (std::size_t s = 0; s < send_blocks_.size(); ++s)
    comm_->send(send_blocks_[s], kTagGhost, send_bufs_[s]);

  if (!armed) {
    // Perfect network: plain blocking receives, no retry machinery.
    std::vector<Particle> ghosts = self_buf_;
    for (const int src : send_blocks_) {
      auto in = comm_->recv<Particle>(src, kTagGhost);
      ghosts.insert(ghosts.end(), in.begin(), in.end());
    }
    TESS_COUNT("diy.ghost_sent", last_sent_);
    TESS_COUNT("diy.ghost_received", ghosts.size());
    return ghosts;
  }

  in_progress_ = true;
  pending_prev_ = ghost_prev;
  pending_next_ = ghost_next;
  pending_self_ = self_buf_;
  recv_pending_.assign(send_blocks_.size(), 1);
  recv_store_.assign(send_blocks_.size(), {});
  return finish_exchange();
}

std::vector<Particle> Exchanger::finish_exchange() {
  // Receive from every still-pending neighbor with bounded exponential
  // backoff. A neighbor that exhausts the budget is skipped (the others
  // still drain), the exchange stays incomplete, and the caller decides
  // whether to resume or give up. RankRetiredError propagates: a dead peer
  // cannot be waited out.
  for (std::size_t s = 0; s < send_blocks_.size(); ++s) {
    if (recv_pending_[s] == 0) continue;
    const int src = send_blocks_[s];
    auto timeout = kRecvBaseTimeout;
    for (int attempt = 0; attempt < kRecvAttempts; ++attempt) {
      if (attempt > 0) TESS_COUNT("comm.recv.retries", 1);
      auto in = comm_->recv_for<Particle>(src, kTagGhost, timeout);
      if (in) {
        recv_store_[s] = std::move(*in);
        recv_pending_[s] = 0;
        break;
      }
      timeout *= 2;
    }
    if (recv_pending_[s] != 0) TESS_COUNT("comm.recv.timeouts", 1);
  }

  if (std::find(recv_pending_.begin(), recv_pending_.end(), std::uint8_t{1}) !=
      recv_pending_.end()) {
    TESS_COUNT("diy.exchange_incomplete", 1);
    return {};
  }

  in_progress_ = false;
  std::vector<Particle> ghosts = std::move(pending_self_);
  pending_self_.clear();
  for (auto& in : recv_store_) {
    ghosts.insert(ghosts.end(), in.begin(), in.end());
    in.clear();
  }
  TESS_COUNT("diy.ghost_sent", last_sent_);
  TESS_COUNT("diy.ghost_received", ghosts.size());
  return ghosts;
}

std::vector<Particle> Exchanger::migrate(std::vector<Particle> mine) {
  TESS_SPAN("diy.migrate");
  return migrate_items(*comm_, *decomp_, std::move(mine),
                       [](Particle& p) -> geom::Vec3& { return p.pos; },
                       kTagMigrate);
}

}  // namespace tess::diy
