// Neighborhood particle exchange between blocks.
//
// Implements the paper's two DIY additions (§III-C1):
//  * periodic boundary neighbors — particles sent across the domain edge
//    are translated by the decomposition's periodic shift, and
//  * targeted particle exchange — a particle is sent only to the neighbors
//    whose blocks lie within the ghost distance of it.
// Also provides particle migration (used by the simulation when particles
// drift out of their block between time steps).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/comm.hpp"
#include "diy/decomposition.hpp"
#include "diy/particle.hpp"

namespace tess::diy {

/// Generic migration: wrap each item's position into the domain and deliver it
/// to the rank whose block contains it (one block per rank). `pos_of` maps
/// an item to a mutable reference to its position. Collective.
template <typename T, typename PosFn>
std::vector<T> migrate_items(comm::Comm& comm, const Decomposition& decomp,
                             std::vector<T> items, PosFn pos_of,
                             int tag = 102) {
  const int n = comm.size();
  const int me = comm.rank();
  std::vector<std::vector<T>> buckets(static_cast<std::size_t>(n));
  std::vector<T> kept;
  for (auto& item : items) {
    auto& pos = pos_of(item);
    pos = decomp.wrap(pos);
    const int dest = decomp.block_of_point(pos);
    if (dest == me) {
      kept.push_back(item);
    } else {
      buckets[static_cast<std::size_t>(dest)].push_back(item);
    }
  }
  for (int r = 0; r < n; ++r)
    if (r != me) comm.send(r, tag, buckets[static_cast<std::size_t>(r)]);
  for (int r = 0; r < n; ++r) {
    if (r == me) continue;
    auto in = comm.recv<T>(r, tag);
    kept.insert(kept.end(), in.begin(), in.end());
  }
  return kept;
}

/// One rank owns one block: block index == rank. All methods are collective
/// over the communicator.
class Exchanger {
 public:
  Exchanger(comm::Comm& comm, const Decomposition& decomp);

  [[nodiscard]] int my_block() const { return comm_->rank(); }
  [[nodiscard]] Bounds my_bounds() const { return decomp_->block_bounds(my_block()); }

  /// Bidirectional ghost exchange: every particle within `ghost` of a
  /// neighboring block is sent to that neighbor (translated across periodic
  /// boundaries). Returns the ghost particles this block receives, in the
  /// local (shifted) frame. Self-images from wrap-around neighbors of the
  /// same block are included when the decomposition is that small.
  std::vector<Particle> exchange_ghost(const std::vector<Particle>& mine,
                                       double ghost);

  /// Annulus-delta exchange for the incremental auto-ghost loop: like
  /// exchange_ghost, but a particle image is sent only when its distance d
  /// to the neighbor block satisfies `ghost_prev < d <= ghost_next` — the
  /// particles that become visible when the ghost grows from ghost_prev to
  /// ghost_next. Distances are computed by the same expressions as
  /// exchange_ghost, so an initial exchange at g0 followed by deltas
  /// (g0,g1], (g1,g2], ... yields exactly the multiset exchange_ghost would
  /// return at the final ghost: the annuli partition [0, g_final] without
  /// duplicating or dropping any particle. Collective.
  std::vector<Particle> exchange_ghost_delta(const std::vector<Particle>& mine,
                                             double ghost_prev,
                                             double ghost_next);

  /// Move particles to the blocks that now contain them (positions are
  /// wrapped into the domain first). Returns this block's new particle set.
  std::vector<Particle> migrate(std::vector<Particle> mine);

  /// Particles sent by this rank in the last exchange_ghost call.
  [[nodiscard]] std::size_t last_sent() const { return last_sent_; }

  /// Whether the last exchange_ghost/exchange_ghost_delta call received
  /// every neighbor's message. Always true with the fault injector
  /// disarmed (receives block until satisfied). When armed, a neighbor
  /// whose message stayed missing through the bounded retry budget leaves
  /// the exchange incomplete: the call returns an empty vector, already-
  /// received messages stay stashed, and the next call with the *same*
  /// annulus resumes receive-only (nothing is re-sent — the missing
  /// message is in the injector's limbo or the peer is dead, and a resend
  /// would shift the sequence stream under the receiver).
  [[nodiscard]] bool last_exchange_complete() const { return !in_progress_; }

 private:
  std::vector<Particle> exchange_annulus(const std::vector<Particle>& mine,
                                         double ghost_prev, double ghost_next);
  std::vector<Particle> finish_exchange();
  void ensure_reach(double reach);

  comm::Comm* comm_;
  const Decomposition* decomp_;
  std::size_t last_sent_ = 0;

  // Resumable-exchange state (only used while the fault injector is armed).
  bool in_progress_ = false;
  double pending_prev_ = 0.0;
  double pending_next_ = 0.0;
  std::vector<std::uint8_t> recv_pending_;        // per send_blocks_ slot
  std::vector<std::vector<Particle>> recv_store_;  // received, awaiting assembly
  std::vector<Particle> pending_self_;             // self-images of the pass

  // Neighborhood state recomputed per reach by ensure_reach (discovered
  // from block extents via Decomposition::neighbors_within, so it is valid
  // for both grid and k-d layouts and for ghost distances exceeding a
  // block width): neighbor list, hoisted per-neighbor block bounds, the
  // sorted unique destination blocks, and for each neighbor the index of
  // its destination's send buffer (-1 = wrap-around image of this block
  // itself). Every rank derives the same symmetric (block, shift) set from
  // the same collective ghost argument, so the per-pass message pattern
  // stays symmetric and deterministic. The flat send buffers are cleared
  // and reused every exchange, keeping deterministic per-block message
  // content and (sorted-by-block) message order.
  double reach_ = -1.0;
  std::vector<Neighbor> nbrs_;
  std::vector<Bounds> nbr_bounds_;
  std::vector<int> send_blocks_;
  std::vector<int> nbr_slot_;
  std::vector<std::vector<Particle>> send_bufs_;
  std::vector<Particle> self_buf_;

  static constexpr int kTagGhost = 100;
  static constexpr int kTagMigrate = 101;
};

}  // namespace tess::diy
