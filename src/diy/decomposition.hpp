// Block decomposition of a 3D domain with periodic boundary neighbors.
//
// This mirrors the role DIY plays for tess in the paper: the simulation
// hands the analysis its block decomposition and neighborhood connectivity,
// and the exchange layer moves particles between neighboring blocks. The
// two features the paper added to DIY — periodic boundary neighbors with a
// coordinate transform, and destination selection by proximity to a target
// point — live here and in exchange.hpp.
//
// Two layouts share one concrete class:
//   * kGrid — the original regular bx*by*bz tiling (uniform blocks).
//   * kTree — a mass-weighted k-d (recursive bisection) tiling of
//     non-uniform convex blocks, built from a particle sample so each
//     block carries roughly equal work (PARAVT-style irregular domains).
// Both expose the same point-routing and neighbor-discovery API; only the
// grid keeps the tensor helpers (dims/block_coords/block_index).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "geom/vec3.hpp"

namespace tess::diy {

using geom::Vec3;

/// Axis-aligned block bounds [min, max).
struct Bounds {
  Vec3 min, max;

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= min.x && p.x < max.x && p.y >= min.y && p.y < max.y &&
           p.z >= min.z && p.z < max.z;
  }
  /// Euclidean distance from p to the closed box (0 if inside).
  [[nodiscard]] double distance(const Vec3& p) const;
  /// Euclidean distance between two closed boxes (0 if they touch).
  [[nodiscard]] double box_distance(const Bounds& o) const;
  [[nodiscard]] Bounds grown(double t) const {
    return {min - Vec3{t, t, t}, max + Vec3{t, t, t}};
  }
  [[nodiscard]] Bounds shifted(const Vec3& s) const {
    return {min + s, max + s};
  }
};

/// One neighbor relationship. `shift` is the translation to apply to a
/// point when sending it to this neighbor across a periodic boundary (zero
/// for ordinary neighbors) — the "user-specified transformation" callback
/// the paper added to DIY, made concrete.
struct Neighbor {
  int block = -1;
  Vec3 shift{};

  bool operator==(const Neighbor& o) const {
    return block == o.block && shift == o.shift;
  }
};

/// Which layout a Decomposition uses.
enum class DecompKind { kGrid, kTree };

/// One internal node of a k-d split tree. Trivially copyable so a split
/// tree built collectively on one rank can be broadcast as raw bytes.
/// Children encode either another split node (index >= 0 into the node
/// array) or a leaf block (~child is the block id).
struct KdSplit {
  int axis = 0;      // 0=x 1=y 2=z
  double coord = 0;  // points with p[axis] < coord route left
  int left = -1;
  int right = -1;
};

/// Decomposition of [domain_min, domain_max) into disjoint convex blocks.
class Decomposition {
 public:
  /// Regular grid of bx*by*bz uniform blocks.
  Decomposition(const Vec3& domain_min, const Vec3& domain_max,
                const std::array<int, 3>& blocks_per_dim, bool periodic);

  /// k-d tiling reconstructed from an explicit split tree (the broadcast
  /// side of a collective build). Validates that the tree tiles the domain
  /// into exactly `nblocks` leaves with each block id appearing once.
  Decomposition(const Vec3& domain_min, const Vec3& domain_max, bool periodic,
                int nblocks, std::vector<KdSplit> splits);

  /// Mass-weighted recursive bisection: split the longest axis of each box
  /// at the weighted median of the contained sample points until `nblocks`
  /// leaves exist. `weights` is optional (HACC particles are equal-mass, so
  /// the default is unit weight per point). Deterministic for a given
  /// point multiset: ties in the split coordinate are resolved at distinct-
  /// coordinate granularity, independent of input order.
  static Decomposition kd(const Vec3& domain_min, const Vec3& domain_max,
                          bool periodic, int nblocks,
                          const std::vector<Vec3>& points,
                          const std::vector<double>* weights = nullptr);

  /// Near-cubic factorization of `nblocks` used when the caller only knows
  /// the total count (one block per rank).
  static std::array<int, 3> factor(int nblocks);

  [[nodiscard]] DecompKind kind() const { return kind_; }
  [[nodiscard]] int num_blocks() const { return nblocks_; }
  /// Grid layout only.
  [[nodiscard]] const std::array<int, 3>& dims() const;
  /// Tree layout only: the split tree (empty when nblocks == 1).
  [[nodiscard]] const std::vector<KdSplit>& splits() const { return splits_; }
  [[nodiscard]] bool periodic() const { return periodic_; }
  [[nodiscard]] const Vec3& domain_min() const { return domain_min_; }
  [[nodiscard]] const Vec3& domain_max() const { return domain_max_; }
  [[nodiscard]] Vec3 domain_size() const { return domain_max_ - domain_min_; }

  [[nodiscard]] Bounds block_bounds(int block) const;
  /// Grid layout only.
  [[nodiscard]] std::array<int, 3> block_coords(int block) const;
  /// Grid layout only.
  [[nodiscard]] int block_index(const std::array<int, 3>& c) const;

  /// The block containing p (p is wrapped into the domain when periodic,
  /// clamped otherwise).
  [[nodiscard]] int block_of_point(const Vec3& p) const;

  /// All distinct neighbor relationships of `block` (for a grid: up to 26,
  /// fewer at non-periodic domain edges; periodic neighbors carry nonzero
  /// shifts; with very few blocks per dimension the same block can appear
  /// multiple times under different shifts, including itself). For a tree
  /// layout this is neighbors_within(block, 0): every block touching mine.
  [[nodiscard]] std::vector<Neighbor> neighbors(int block) const;

  /// Generic neighbor discovery from block extents: every (block, shift)
  /// pair whose box lies within `reach` of some periodic image of `block`'s
  /// box — i.e. a particle of mine, translated by `shift`, could fall
  /// inside that block's bounds grown by `reach`. Works for both layouts
  /// and any reach (a grid block two cells away shows up once reach
  /// exceeds the intervening block's width, which the fixed 26-stencil
  /// could not express). Periodic images consider one wrap per axis, which
  /// covers any reach up to the domain size. Results are memoised per
  /// (block, reach); the cache is mutex-guarded because rank threads share
  /// one Decomposition.
  [[nodiscard]] std::vector<Neighbor> neighbors_within(int block,
                                                      double reach) const;

  /// Wrap a point into the primary domain (no-op when not periodic).
  [[nodiscard]] Vec3 wrap(const Vec3& p) const;

 private:
  [[nodiscard]] std::vector<Neighbor> compute_neighbors_within(
      int block, double reach) const;
  void build_tree_bounds();

  Vec3 domain_min_, domain_max_;
  std::array<int, 3> dims_{1, 1, 1};
  bool periodic_ = false;
  DecompKind kind_ = DecompKind::kGrid;
  int nblocks_ = 1;
  std::vector<KdSplit> splits_;        // tree layout
  std::vector<Bounds> tree_bounds_;    // tree layout: per-block extents

  // Lazy neighbor cache shared by all rank threads (see neighbors_within).
  mutable std::mutex nbr_mutex_;
  mutable std::map<std::pair<int, double>,
                   std::shared_ptr<const std::vector<Neighbor>>>
      nbr_cache_;
};

}  // namespace tess::diy
