// Regular block decomposition of a 3D domain with 26-connectivity and
// periodic boundary neighbors.
//
// This mirrors the role DIY plays for tess in the paper: the simulation
// hands the analysis its block decomposition and neighborhood connectivity,
// and the exchange layer moves particles between neighboring blocks. The
// two features the paper added to DIY — periodic boundary neighbors with a
// coordinate transform, and destination selection by proximity to a target
// point — live here and in exchange.hpp.
#pragma once

#include <array>
#include <vector>

#include "geom/vec3.hpp"

namespace tess::diy {

using geom::Vec3;

/// Axis-aligned block bounds [min, max).
struct Bounds {
  Vec3 min, max;

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= min.x && p.x < max.x && p.y >= min.y && p.y < max.y &&
           p.z >= min.z && p.z < max.z;
  }
  /// Euclidean distance from p to the closed box (0 if inside).
  [[nodiscard]] double distance(const Vec3& p) const;
  [[nodiscard]] Bounds grown(double t) const {
    return {min - Vec3{t, t, t}, max + Vec3{t, t, t}};
  }
};

/// One neighbor relationship. `shift` is the translation to apply to a
/// point when sending it to this neighbor across a periodic boundary (zero
/// for ordinary neighbors) — the "user-specified transformation" callback
/// the paper added to DIY, made concrete.
struct Neighbor {
  int block = -1;
  Vec3 shift{};

  bool operator==(const Neighbor& o) const {
    return block == o.block && shift == o.shift;
  }
};

/// Regular decomposition of [domain_min, domain_max) into bx*by*bz blocks.
class Decomposition {
 public:
  Decomposition(const Vec3& domain_min, const Vec3& domain_max,
                const std::array<int, 3>& blocks_per_dim, bool periodic);

  /// Near-cubic factorization of `nblocks` used when the caller only knows
  /// the total count (one block per rank).
  static std::array<int, 3> factor(int nblocks);

  [[nodiscard]] int num_blocks() const {
    return dims_[0] * dims_[1] * dims_[2];
  }
  [[nodiscard]] const std::array<int, 3>& dims() const { return dims_; }
  [[nodiscard]] bool periodic() const { return periodic_; }
  [[nodiscard]] const Vec3& domain_min() const { return domain_min_; }
  [[nodiscard]] const Vec3& domain_max() const { return domain_max_; }
  [[nodiscard]] Vec3 domain_size() const { return domain_max_ - domain_min_; }

  [[nodiscard]] Bounds block_bounds(int block) const;
  [[nodiscard]] std::array<int, 3> block_coords(int block) const;
  [[nodiscard]] int block_index(const std::array<int, 3>& c) const;

  /// The block containing p (p is wrapped into the domain when periodic,
  /// clamped otherwise).
  [[nodiscard]] int block_of_point(const Vec3& p) const;

  /// All distinct neighbor relationships of `block` (up to 26, fewer at
  /// non-periodic domain edges; periodic neighbors carry nonzero shifts;
  /// with very few blocks per dimension the same block can appear multiple
  /// times under different shifts, including itself).
  [[nodiscard]] std::vector<Neighbor> neighbors(int block) const;

  /// Wrap a point into the primary domain (no-op when not periodic).
  [[nodiscard]] Vec3 wrap(const Vec3& p) const;

 private:
  Vec3 domain_min_, domain_max_;
  std::array<int, 3> dims_;
  bool periodic_;
};

}  // namespace tess::diy
