// The particle record moved between blocks by the exchange layer and
// consumed by the tessellation: a position plus a stable global id. The id
// is what lets the tessellation resolve duplicated cells across blocks and
// name Voronoi neighbors consistently everywhere.
#pragma once

#include <cstdint>

#include "geom/vec3.hpp"

namespace tess::diy {

struct Particle {
  geom::Vec3 pos;
  std::int64_t id = -1;
};
static_assert(sizeof(Particle) == 32, "Particle must stay trivially packable");

}  // namespace tess::diy
