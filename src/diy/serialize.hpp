// Flat binary serialization buffers for block I/O.
//
// Blocks are serialized rank-locally into a Buffer, concatenated into one
// file at exscan-computed offsets, and deserialized by the reader. Only
// trivially copyable scalars and vectors thereof are supported, which is
// all the tessellation data model needs.
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace tess::diy {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::byte> data) : data_(std::move(data)) {}

  [[nodiscard]] const std::vector<std::byte>& data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    data_.insert(data_.end(), p, p + v.size() * sizeof(T));
  }

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

 private:
  void require(std::size_t bytes) const {
    if (pos_ + bytes > data_.size())
      throw std::runtime_error("Buffer: read past end (offset " +
                               std::to_string(pos_) + " + " +
                               std::to_string(bytes) + " > " +
                               std::to_string(data_.size()) + ")");
  }

  std::vector<std::byte> data_;
  std::size_t pos_ = 0;
};

/// Non-owning read cursor over externally managed bytes — the zero-copy
/// counterpart of Buffer's read side, used to deserialize blocks directly
/// out of a memory-mapped file (diy::MappedBlockFile) without staging them
/// through a heap copy. The caller guarantees the bytes outlive the view.
class BufferView {
 public:
  BufferView(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

 private:
  void require(std::size_t bytes) const {
    if (pos_ + bytes > size_)
      throw std::runtime_error("BufferView: read past end (offset " +
                               std::to_string(pos_) + " + " +
                               std::to_string(bytes) + " > " +
                               std::to_string(size_) + ")");
  }

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace tess::diy
