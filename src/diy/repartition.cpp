#include "diy/repartition.hpp"

#include "obs/trace.hpp"

namespace tess::diy {

std::vector<Vec3> sample_positions(const std::vector<Particle>& mine,
                                   std::size_t max_sample) {
  std::vector<Vec3> out;
  if (mine.empty() || max_sample == 0) return out;
  const std::size_t stride = (mine.size() + max_sample - 1) / max_sample;
  out.reserve(mine.size() / stride + 1);
  for (std::size_t i = 0; i < mine.size(); i += stride)
    out.push_back(mine[i].pos);
  return out;
}

std::unique_ptr<Decomposition> collective_kd(comm::Comm& comm,
                                             const Decomposition& like,
                                             const std::vector<Particle>& mine,
                                             std::size_t max_sample_per_rank) {
  TESS_SPAN("diy.repartition.build");
  const auto sample = sample_positions(mine, max_sample_per_rank);
  const auto all = comm.gatherv(sample);
  std::vector<KdSplit> splits;
  if (comm.rank() == 0) {
    const auto built =
        Decomposition::kd(like.domain_min(), like.domain_max(),
                          like.periodic(), comm.size(), all);
    splits = built.splits();
  }
  comm.broadcast(splits, 0);
  return std::make_unique<Decomposition>(like.domain_min(), like.domain_max(),
                                         like.periodic(), comm.size(),
                                         std::move(splits));
}

}  // namespace tess::diy
